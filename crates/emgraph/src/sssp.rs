//! Single-source shortest paths with an external priority queue.
//!
//! Dijkstra's algorithm externalized the way the survey's shortest-path
//! discussion prescribes: the tentative-distance queue is an
//! [`ExtPriorityQueue`] with *lazy deletion* (no decrease-key — a vertex may
//! be enqueued once per incoming edge; stale entries are discarded when
//! popped).  The adjacency is clustered on disk and fetched once per
//! settled vertex.
//!
//! This is the *semi-external* variant: the settled bitmap (one bit per
//! vertex) lives in internal memory.  Fully-external SSSP (Kumar–Schwabe
//! and successors, which the survey cites as partially open) replaces the
//! bitmap with a second priority queue; the bitmap version is what the
//! practical libraries ship and costs
//!
//! ```text
//! O(V + E/B + Sort(E))  I/Os  (+ V bits of memory).
//! ```

use em_core::{ExtVec, ExtVecWriter};
use emsort::{merge_sort_by, SortConfig};
use emtree::ExtPriorityQueue;
use pdm::Result;

/// Shortest-path distances from `source` in the undirected, non-negatively
/// weighted graph `edges` (`(u, v, w)`, dense vertex ids `0..n`).  Returns
/// `(vertex, distance)` for every reachable vertex, sorted by vertex id.
pub fn sssp(
    edges: &ExtVec<(u64, u64, u64)>,
    n: u64,
    source: u64,
    cfg: &SortConfig,
) -> Result<ExtVec<(u64, u64)>> {
    assert!(source < n);
    let device = edges.device().clone();

    // Clustered adjacency: arcs (src, dst, w) sorted by src, plus a dense
    // (start, degree) offset table.
    let adj = {
        let mut w: ExtVecWriter<(u64, u64, u64)> = ExtVecWriter::new(device.clone());
        let mut r = edges.reader();
        while let Some((u, v, wt)) = r.try_next()? {
            assert!(u < n && v < n, "vertex id out of range");
            w.push((u, v, wt))?;
            w.push((v, u, wt))?;
        }
        let unsorted = w.finish()?;
        let sorted = merge_sort_by(&unsorted, cfg, |a, b| (a.0, a.1) < (b.0, b.1))?;
        unsorted.free()?;
        sorted
    };
    let offsets: ExtVec<(u64, u64)> = {
        let mut w: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device.clone());
        let mut r = adj.reader();
        let mut pos = 0u64;
        let mut next_vertex = 0u64;
        let mut cur: Option<(u64, u64)> = None;
        while let Some((src, _, _)) = r.try_next()? {
            match &cur {
                Some((v, _)) if *v == src => {}
                _ => {
                    if let Some((v, start)) = cur {
                        while next_vertex < v {
                            w.push((0, 0))?;
                            next_vertex += 1;
                        }
                        w.push((start, pos - start))?;
                        next_vertex += 1;
                    }
                    cur = Some((src, pos));
                }
            }
            pos += 1;
        }
        if let Some((v, start)) = cur {
            while next_vertex < v {
                w.push((0, 0))?;
                next_vertex += 1;
            }
            w.push((start, pos - start))?;
            next_vertex += 1;
        }
        while next_vertex < n {
            w.push((0, 0))?;
            next_vertex += 1;
        }
        w.finish()?
    };

    // Dijkstra with lazy deletion.
    let mut settled = vec![false; n as usize]; // the semi-external bitmap
    let mut pq: ExtPriorityQueue<(u64, u64)> =
        ExtPriorityQueue::new(device.clone(), cfg.mem_records)?;
    pq.push((0, source))?;
    let mut out: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device.clone());
    let mut nbr: Vec<(u64, u64, u64)> = Vec::new();
    while let Some((dist, v)) = pq.pop()? {
        if settled[v as usize] {
            continue; // stale entry
        }
        settled[v as usize] = true;
        out.push((v, dist))?;
        let (start, deg) = offsets.get(v)?;
        if deg > 0 {
            adj.read_range(start, deg as usize, &mut nbr)?;
            for &(_, u, w) in nbr.iter() {
                if !settled[u as usize] {
                    pq.push((dist + w, u))?;
                }
            }
        }
    }
    adj.free()?;
    offsets.free()?;
    let unsorted = out.finish()?;
    let sorted = merge_sort_by(&unsorted, cfg, |a, b| a.0 < b.0)?;
    unsorted.free()?;
    Ok(sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::EmConfig;
    use pdm::SharedDevice;
    use rand::prelude::*;

    fn device() -> SharedDevice {
        EmConfig::new(256, 16).ram_disk()
    }

    fn reference_dijkstra(edges: &[(u64, u64, u64)], n: u64, source: u64) -> Vec<(u64, u64)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut adj = vec![Vec::new(); n as usize];
        for &(u, v, w) in edges {
            adj[u as usize].push((v, w));
            adj[v as usize].push((u, w));
        }
        let mut dist = vec![u64::MAX; n as usize];
        dist[source as usize] = 0;
        let mut heap = BinaryHeap::from([Reverse((0u64, source))]);
        while let Some(Reverse((d, v))) = heap.pop() {
            if d > dist[v as usize] {
                continue;
            }
            for &(u, w) in &adj[v as usize] {
                if d + w < dist[u as usize] {
                    dist[u as usize] = d + w;
                    heap.push(Reverse((d + w, u)));
                }
            }
        }
        (0..n)
            .filter(|&v| dist[v as usize] != u64::MAX)
            .map(|v| (v, dist[v as usize]))
            .collect()
    }

    fn random_weighted(d: &SharedDevice, n: u64, extra: u64, seed: u64) -> ExtVec<(u64, u64, u64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for v in 1..n {
            let p = rng.gen_range(0..v);
            edges.push((p, v, rng.gen_range(1..100)));
        }
        for _ in 0..extra {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                edges.push((a.min(b), a.max(b), rng.gen_range(1..100)));
            }
        }
        ExtVec::from_slice(d.clone(), &edges).unwrap()
    }

    #[test]
    fn tiny_graph_exact() {
        let d = device();
        // 0 -5- 1 -1- 2, 0 -10- 2: shortest to 2 is 6.
        let g = ExtVec::from_slice(d, &[(0u64, 1u64, 5u64), (1, 2, 1), (0, 2, 10)]).unwrap();
        let got = sssp(&g, 3, 0, &SortConfig::new(256)).unwrap();
        assert_eq!(got.to_vec().unwrap(), vec![(0, 0), (1, 5), (2, 6)]);
    }

    #[test]
    fn random_graphs_match_reference() {
        let d = device();
        for seed in [161u64, 162, 163] {
            let n = 800;
            let g = random_weighted(&d, n, 1600, seed);
            let got = sssp(&g, n, 0, &SortConfig::new(512)).unwrap();
            assert_eq!(
                got.to_vec().unwrap(),
                reference_dijkstra(&g.to_vec().unwrap(), n, 0),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn zero_weight_edges() {
        let d = device();
        let g = ExtVec::from_slice(d, &[(0u64, 1u64, 0u64), (1, 2, 0), (0, 2, 5)]).unwrap();
        let got = sssp(&g, 3, 0, &SortConfig::new(256)).unwrap();
        assert_eq!(got.to_vec().unwrap(), vec![(0, 0), (1, 0), (2, 0)]);
    }

    #[test]
    fn disconnected_reports_only_reachable() {
        let d = device();
        let g = ExtVec::from_slice(d, &[(0u64, 1u64, 3u64), (2, 3, 4)]).unwrap();
        let got = sssp(&g, 5, 0, &SortConfig::new(256)).unwrap();
        assert_eq!(got.to_vec().unwrap(), vec![(0, 0), (1, 3)]);
    }

    #[test]
    fn unit_weights_reduce_to_bfs() {
        let d = device();
        let n = 1000u64;
        let edges = crate::gen::random_connected_graph(d.clone(), n, 1500, 164).unwrap();
        let mut w: ExtVecWriter<(u64, u64, u64)> = ExtVecWriter::new(d.clone());
        let mut r = edges.reader();
        while let Some((a, b)) = r.try_next().unwrap() {
            w.push((a, b, 1)).unwrap();
        }
        let weighted = w.finish().unwrap();
        let sc = SortConfig::new(512);
        let dist_sssp = sssp(&weighted, n, 0, &sc).unwrap().to_vec().unwrap();
        let dist_bfs = crate::bfs_mr(&edges, n, 0, &sc).unwrap().to_vec().unwrap();
        assert_eq!(dist_sssp, dist_bfs);
    }

    #[test]
    fn adjacency_read_once_per_settled_vertex() {
        // I/O sanity: the dominant costs are one offset access + one
        // adjacency range per vertex plus PQ traffic — far below one I/O
        // per edge relaxation at realistic B.
        let d = EmConfig::new(4096, 16).ram_disk();
        let n = 5000u64;
        let g = random_weighted(&d, n, 15_000, 165);
        let e = 2 * g.len(); // arcs
        let before = d.stats().snapshot();
        sssp(&g, n, 0, &SortConfig::new(8192)).unwrap();
        let ios = d.stats().snapshot().since(&before).total();
        assert!(
            (ios as f64) < n as f64 + 0.6 * e as f64,
            "sssp used {ios} I/Os for V={n}, arcs={e}"
        );
    }
}
