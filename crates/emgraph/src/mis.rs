//! Maximal independent set via time-forward processing.
//!
//! The survey's showcase application of [`time_forward`](crate::time_forward):
//! process vertices in id order; a vertex joins the set iff none of its
//! lower-numbered neighbours did.  Every "am I blocked?" message travels
//! through the external priority queue, so the whole computation costs
//! `O(Sort(E))` I/Os and no random accesses at all.

use em_core::{ExtVec, ExtVecWriter};
use emsort::SortConfig;
use pdm::Result;

use crate::time_forward;

/// Compute the lexicographically-first maximal independent set of the
/// undirected graph `edges` (dense vertex ids `0..n`).  Returns
/// `(vertex, in_set)` with `in_set ∈ {0, 1}`, sorted by vertex id.
/// `O(Sort(E))` I/Os.
pub fn maximal_independent_set(
    edges: &ExtVec<(u64, u64)>,
    n: u64,
    cfg: &SortConfig,
) -> Result<ExtVec<(u64, u64)>> {
    let device = edges.device().clone();
    // Orient every edge from the smaller to the larger endpoint: a valid
    // topological numbering of the derived DAG.
    let oriented = {
        let mut w: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device.clone());
        let mut r = edges.reader();
        while let Some((u, v)) = r.try_next()? {
            assert!(u < n && v < n, "vertex id out of range");
            if u != v {
                w.push((u.min(v), u.max(v)))?;
            }
        }
        w.finish()?
    };
    let labels: ExtVec<(u64, u64)> = {
        let mut w = ExtVecWriter::new(device);
        for v in 0..n {
            w.push((v, 0))?;
        }
        w.finish()?
    };
    let result = time_forward(&labels, &oriented, cfg, |_, _, incoming| {
        // incoming = membership flags of lower-numbered neighbours.
        u64::from(incoming.iter().all(|&m| m == 0))
    })?;
    labels.free()?;
    oriented.free()?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use em_core::EmConfig;
    use pdm::SharedDevice;

    fn device() -> SharedDevice {
        EmConfig::new(256, 16).ram_disk()
    }

    fn check_mis(edges: &[(u64, u64)], n: u64, flags: &[(u64, u64)]) {
        assert_eq!(flags.len() as u64, n);
        let in_set: Vec<bool> = flags.iter().map(|&(_, f)| f == 1).collect();
        // Independence.
        for &(u, v) in edges {
            assert!(
                !(in_set[u as usize] && in_set[v as usize]),
                "edge ({u},{v}) inside the set"
            );
        }
        // Maximality: every excluded vertex has a neighbour in the set.
        let mut adj = vec![Vec::new(); n as usize];
        for &(u, v) in edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        for v in 0..n as usize {
            if !in_set[v] {
                assert!(
                    adj[v].iter().any(|&u| in_set[u as usize]),
                    "vertex {v} excluded but unblocked"
                );
            }
        }
        // Lexicographically-first: matches the greedy reference.
        let mut greedy = vec![false; n as usize];
        for v in 0..n as usize {
            greedy[v] = adj[v]
                .iter()
                .all(|&u| u as usize >= v || !greedy[u as usize]);
        }
        assert_eq!(in_set, greedy, "not the greedy MIS");
    }

    #[test]
    fn path_graph_alternates() {
        let d = device();
        let edges: Vec<(u64, u64)> = (0..9u64).map(|i| (i, i + 1)).collect();
        let g = ExtVec::from_slice(d, &edges).unwrap();
        let flags = maximal_independent_set(&g, 10, &SortConfig::new(256)).unwrap();
        let got = flags.to_vec().unwrap();
        assert_eq!(
            got,
            (0..10u64)
                .map(|v| (v, (v % 2 == 0) as u64))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_graphs_are_valid_mis() {
        let d = device();
        for seed in [181u64, 182, 183] {
            let n = 1500u64;
            let g = gen::random_graph(d.clone(), n, 4.0, seed).unwrap();
            let flags = maximal_independent_set(&g, n, &SortConfig::new(512)).unwrap();
            check_mis(&g.to_vec().unwrap(), n, &flags.to_vec().unwrap());
        }
    }

    #[test]
    fn complete_graph_keeps_only_vertex_zero() {
        let d = device();
        let mut edges = Vec::new();
        for u in 0..8u64 {
            for v in u + 1..8 {
                edges.push((u, v));
            }
        }
        let g = ExtVec::from_slice(d, &edges).unwrap();
        let flags = maximal_independent_set(&g, 8, &SortConfig::new(256)).unwrap();
        let got = flags.to_vec().unwrap();
        assert_eq!(got[0], (0, 1));
        assert!(got[1..].iter().all(|&(_, f)| f == 0));
    }

    #[test]
    fn edgeless_graph_takes_everyone() {
        let d = device();
        let g: ExtVec<(u64, u64)> = ExtVec::new(d);
        let flags = maximal_independent_set(&g, 5, &SortConfig::new(256)).unwrap();
        assert!(flags.to_vec().unwrap().iter().all(|&(_, f)| f == 1));
    }
}
