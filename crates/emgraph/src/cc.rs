//! Connected components by hook-and-contract (Borůvka-style) rounds.
//!
//! Each round: every component label *hooks* onto its minimum neighbouring
//! label; the resulting parent forest is compressed by pointer doubling
//! (each step a sort + join, not a pointer chase); labels and edges are
//! rewritten through the compressed map; intra-component edges vanish.  The
//! number of live labels at least halves per round, so
//!
//! ```text
//! I/Os = O(Sort(E) · log(V))
//! ```
//!
//! (the survey also covers `O(Sort(E) · log(V/M))` refinements that switch
//! to an internal-memory algorithm once the contracted graph fits; the
//! implementation does exactly that as its base case).

use em_core::{ExtVec, ExtVecWriter};
use emsort::{merge_sort_streaming, SortConfig, SortingWriter};
use pdm::Result;

use crate::util::join_left_stream;

/// Component label of every vertex of the undirected graph `edges` (dense
/// vertex ids `0..n`): `(vertex, label)` sorted by vertex, where the label
/// is the minimum vertex id of the component.
pub fn connected_components(
    edges: &ExtVec<(u64, u64)>,
    n: u64,
    cfg: &SortConfig,
) -> Result<ExtVec<(u64, u64)>> {
    let device = edges.device().clone();

    // labels: (vertex, current label), sorted by vertex.
    let mut labels = {
        let mut w: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device.clone());
        for v in 0..n {
            w.push((v, v))?;
        }
        w.finish()?
    };
    // Live inter-label edges.
    let mut cur_edges = {
        let mut w: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device.clone());
        let mut r = edges.reader();
        while let Some((u, v)) = r.try_next()? {
            assert!(u < n && v < n, "vertex id out of range");
            if u != v {
                w.push((u, v))?;
            }
        }
        w.finish()?
    };

    for round in 0.. {
        assert!(round < 64, "component labelling failed to converge");
        if cur_edges.is_empty() {
            break;
        }
        // Base case: the contracted edge set fits in memory.
        if cur_edges.len() as usize <= cfg.mem_records / 2 {
            let parents = in_memory_components(&cur_edges)?;
            cur_edges.free()?;
            cur_edges = ExtVec::new(device.clone());
            labels = apply_map(labels, &parents, cfg)?;
            parents.free()?;
            break;
        }

        // Hook: each label points to its minimum neighbour if smaller.  The
        // doubled arcs feed the sort as they are produced, and the sorted
        // arc list is consumed once by the grouping scan — both ends of the
        // sort fused.
        let mut arcs_w: SortingWriter<(u64, u64), _> =
            SortingWriter::new(device.clone(), cfg, |x, y| x < y);
        {
            let mut r = cur_edges.reader();
            while let Some((a, b)) = r.try_next()? {
                arcs_w.push((a, b))?;
                arcs_w.push((b, a))?;
            }
        }
        let mut hooks_w: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device.clone());
        arcs_w.finish_streaming(|r| {
            let mut group: Option<(u64, u64)> = None; // (src, min_dst)
            while let Some((src, dst)) = r.try_next()? {
                match &mut group {
                    Some((gsrc, min_dst)) if *gsrc == src => {
                        *min_dst = (*min_dst).min(dst);
                    }
                    _ => {
                        if let Some((gsrc, min_dst)) = group {
                            if min_dst < gsrc {
                                hooks_w.push((gsrc, min_dst))?;
                            }
                        }
                        group = Some((src, dst));
                    }
                }
            }
            if let Some((gsrc, min_dst)) = group {
                if min_dst < gsrc {
                    hooks_w.push((gsrc, min_dst))?;
                }
            }
            Ok(())
        })?;
        let hooks = hooks_w.finish()?; // sorted by src, src strictly decreases to parent

        // Compress the parent forest by pointer doubling.
        let parents = compress(hooks, cfg)?;

        // Rewrite labels and edges through the parent map.
        labels = apply_map(labels, &parents, cfg)?;
        cur_edges = relabel_edges(cur_edges, &parents, cfg)?;
        parents.free()?;
    }
    cur_edges.free()?;
    Ok(labels)
}

/// Pointer-double the parent map `(x, p)` (sorted by x, `p < x`) until every
/// entry points at a root.  `O(Sort(P) · log depth)` I/Os.
fn compress(mut parents: ExtVec<(u64, u64)>, cfg: &SortConfig) -> Result<ExtVec<(u64, u64)>> {
    loop {
        // new_p(x) = p(p(x)), where unmapped values are roots.
        // Build (p, x) sorted by p, join with parents (keyed by x); the
        // swapped pairs flow straight into the sort, and its final merge
        // streams straight into the join.
        let device = parents.device().clone();
        let mut swapped_w: SortingWriter<(u64, u64), _> =
            SortingWriter::new(device.clone(), cfg, |a: &(u64, u64), b| a.0 < b.0);
        {
            let mut r = parents.reader();
            while let Some((x, p)) = r.try_next()? {
                swapped_w.push((p, x))?;
            }
        }
        let joined = swapped_w.finish_streaming(|s| {
            join_left_stream(s, &parents, u64::MAX) // (p, x, pp | MAX)
        })?;
        let mut changed = false;
        let next = {
            let mut w: SortingWriter<(u64, u64), _> =
                SortingWriter::new(device.clone(), cfg, |a: &(u64, u64), b| a.0 < b.0);
            let mut r = joined.reader();
            while let Some((p, x, pp)) = r.try_next()? {
                if pp == u64::MAX {
                    w.push((x, p))?; // p is a root
                } else {
                    changed = true;
                    w.push((x, pp))?;
                }
            }
            w.finish_sorted()?
        };
        joined.free()?;
        parents.free()?;
        parents = next;
        if !changed {
            return Ok(parents);
        }
    }
}

/// Rewrite the label column of `(vertex, label)` through the parent map
/// (labels not present in the map are unchanged).  Consumes `labels`.
fn apply_map(
    labels: ExtVec<(u64, u64)>,
    parents: &ExtVec<(u64, u64)>,
    cfg: &SortConfig,
) -> Result<ExtVec<(u64, u64)>> {
    let device = labels.device().clone();
    // Key by label: (label, vertex) pairs flow straight into the sort, and
    // the sorted sequence is consumed once by the join — both ends fused.
    let mut by_label_w: SortingWriter<(u64, u64), _> =
        SortingWriter::new(device.clone(), cfg, |a: &(u64, u64), b| a.0 < b.0);
    {
        let mut r = labels.reader();
        while let Some((v, l)) = r.try_next()? {
            by_label_w.push((l, v))?;
        }
    }
    labels.free()?;
    let joined = by_label_w.finish_streaming(|s| {
        join_left_stream(s, parents, u64::MAX) // (label, vertex, parent | MAX)
    })?;
    let remapped = {
        let mut w: SortingWriter<(u64, u64), _> =
            SortingWriter::new(device.clone(), cfg, |a: &(u64, u64), b| a.0 < b.0);
        let mut r = joined.reader();
        while let Some((l, v, p)) = r.try_next()? {
            w.push((v, if p == u64::MAX { l } else { p }))?;
        }
        w.finish_sorted()?
    };
    joined.free()?;
    Ok(remapped)
}

/// Rewrite both endpoints of the label-graph edges through the parent map,
/// dropping self-edges and duplicates.  Consumes `edges`.
fn relabel_edges(
    edges: ExtVec<(u64, u64)>,
    parents: &ExtVec<(u64, u64)>,
    cfg: &SortConfig,
) -> Result<ExtVec<(u64, u64)>> {
    let device = edges.device().clone();
    // Map the first endpoint: the sort by `a` streams into the join.
    let ja = merge_sort_streaming(
        &edges,
        cfg,
        |x, y| x.0 < y.0,
        |s| {
            join_left_stream(s, parents, u64::MAX) // (a, b, pa | MAX)
        },
    )?;
    edges.free()?;
    // Map the second endpoint: rewritten pairs feed the sort directly and
    // the sorted sequence streams straight into the join.
    let mut half_w: SortingWriter<(u64, u64), _> =
        SortingWriter::new(device.clone(), cfg, |x: &(u64, u64), y| x.0 < y.0);
    {
        let mut r = ja.reader();
        while let Some((a, b, pa)) = r.try_next()? {
            let a2 = if pa == u64::MAX { a } else { pa };
            half_w.push((b, a2))?; // keyed by b for the second join
        }
    }
    ja.free()?;
    let jb = half_w.finish_streaming(|s| {
        join_left_stream(s, parents, u64::MAX) // (b, a2, pb | MAX)
    })?;
    // Sort + dedup with both ends fused: normalized edges feed the sort as
    // they are produced, and the final merge streams into the dedup scan.
    let mut full_w: SortingWriter<(u64, u64), _> =
        SortingWriter::new(device.clone(), cfg, |x, y| x < y);
    {
        let mut r = jb.reader();
        while let Some((b, a2, pb)) = r.try_next()? {
            let b2 = if pb == u64::MAX { b } else { pb };
            if a2 != b2 {
                full_w.push((a2.min(b2), a2.max(b2)))?;
            }
        }
    }
    jb.free()?;
    let deduped = full_w.finish_streaming(|r| {
        let mut w: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device.clone());
        let mut last: Option<(u64, u64)> = None;
        while let Some(e) = r.try_next()? {
            if last != Some(e) {
                w.push(e)?;
                last = Some(e);
            }
        }
        w.finish()
    })?;
    Ok(deduped)
}

/// In-memory union-find base case; returns a `(label, root)` map for every
/// label that appears in `edges`, sorted by label.
fn in_memory_components(edges: &ExtVec<(u64, u64)>) -> Result<ExtVec<(u64, u64)>> {
    let pairs = edges.to_vec()?;
    let mut parent: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    fn find(parent: &mut std::collections::HashMap<u64, u64>, x: u64) -> u64 {
        let p = *parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = find(parent, p);
        parent.insert(x, root);
        root
    }
    for (a, b) in pairs {
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra != rb {
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            parent.insert(hi, lo);
        }
    }
    let keys: Vec<u64> = parent.keys().copied().collect();
    let mut out: Vec<(u64, u64)> = keys
        .into_iter()
        .map(|k| (k, find(&mut parent, k)))
        .collect();
    out.sort_unstable();
    ExtVec::from_slice(edges.device().clone(), &out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{grid_graph, planted_components, random_graph};
    use em_core::EmConfig;
    use pdm::SharedDevice;

    fn device() -> SharedDevice {
        EmConfig::new(128, 16).ram_disk()
    }

    fn reference_cc(edges: &[(u64, u64)], n: u64) -> Vec<(u64, u64)> {
        let mut parent: Vec<u64> = (0..n).collect();
        fn find(p: &mut Vec<u64>, x: u64) -> u64 {
            if p[x as usize] != x {
                let r = find(p, p[x as usize]);
                p[x as usize] = r;
            }
            p[x as usize]
        }
        for &(a, b) in edges {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                let (lo, hi) = (ra.min(rb), ra.max(rb));
                parent[hi as usize] = lo;
            }
        }
        (0..n).map(|v| (v, find(&mut parent, v))).collect()
    }

    #[test]
    fn planted_components_found() {
        let d = device();
        let g = planted_components(d.clone(), 5, 100, 121).unwrap();
        // Force external rounds with a small memory budget.
        let got = connected_components(&g, 500, &SortConfig::new(128)).unwrap();
        let expect: Vec<(u64, u64)> = (0..500u64).map(|v| (v, (v / 100) * 100)).collect();
        assert_eq!(got.to_vec().unwrap(), expect);
    }

    #[test]
    fn path_collapses_to_single_label() {
        let d = device();
        let edges: Vec<(u64, u64)> = (0..499u64).map(|i| (i, i + 1)).collect();
        let g = ExtVec::from_slice(d, &edges).unwrap();
        let got = connected_components(&g, 500, &SortConfig::new(128)).unwrap();
        assert!(got.to_vec().unwrap().iter().all(|&(_, l)| l == 0));
    }

    #[test]
    fn grid_is_one_component() {
        let d = device();
        let g = grid_graph(d.clone(), 20, 20).unwrap();
        let got = connected_components(&g, 400, &SortConfig::new(128)).unwrap();
        assert!(got.to_vec().unwrap().iter().all(|&(_, l)| l == 0));
    }

    #[test]
    fn random_graph_matches_union_find() {
        let d = device();
        let n = 1000u64;
        let g = random_graph(d.clone(), n, 1.5, 123).unwrap(); // sparse → many components
        let got = connected_components(&g, n, &SortConfig::new(256)).unwrap();
        assert_eq!(got.to_vec().unwrap(), reference_cc(&g.to_vec().unwrap(), n));
    }

    #[test]
    fn isolated_vertices_keep_own_label() {
        let d = device();
        let g = ExtVec::from_slice(d, &[(0u64, 1u64)]).unwrap();
        let got = connected_components(&g, 4, &SortConfig::new(128)).unwrap();
        assert_eq!(got.to_vec().unwrap(), vec![(0, 0), (1, 0), (2, 2), (3, 3)]);
    }

    #[test]
    fn empty_graph() {
        let d = device();
        let g: ExtVec<(u64, u64)> = ExtVec::new(d);
        let got = connected_components(&g, 3, &SortConfig::new(128)).unwrap();
        assert_eq!(got.to_vec().unwrap(), vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn io_scales_with_sort_times_log() {
        // Realistic block size so Sort(E)·log ≪ E.
        let d = EmConfig::new(4096, 16).ram_disk();
        let n = 3000u64;
        let g = random_graph(d.clone(), n, 3.0, 125).unwrap();
        let e = g.len();
        let before = d.stats().snapshot();
        connected_components(&g, n, &SortConfig::new(2048)).unwrap();
        let ios = d.stats().snapshot().since(&before).total();
        // Generous constant, but must be far below 1 I/O per edge per round.
        assert!(
            (ios as f64) < 1.2 * e as f64,
            "CC used {ios} I/Os for {e} edges"
        );
    }
}
