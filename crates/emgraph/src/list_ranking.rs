//! External list ranking by randomized independent-set contraction.
//!
//! Given a linked list stored as an unordered `(node, successor)` array,
//! compute each node's *rank* — the prefix sum of node weights along the
//! list.  In internal memory one pointer walk suffices; in external memory
//! that walk costs `Θ(N)` I/Os because consecutive list nodes live in
//! unrelated blocks ([`list_rank_naive`], the baseline of experiment F9).
//!
//! The survey's solution contracts the list: flip a coin per node, remove
//! the independent set `{v : heads(v) ∧ tails(pred(v))}` (≈ N/4 nodes)
//! by splicing each removed node's weight into its predecessor, recurse on
//! the ~3N/4 survivors, and reintegrate the removed nodes afterwards.
//! Every round is a constant number of sorts and scans, so the total is
//!
//! ```text
//! T(N) = T(3N/4) + O(Sort(N)) = O(Sort(N)).
//! ```

use std::collections::HashMap;

use em_core::{ExtVec, ExtVecWriter};
use emsort::{merge_sort_by, merge_sort_streaming, SortConfig};
use pdm::Result;

/// "No successor" sentinel for list tails.
pub const NIL: u64 = u64::MAX;

/// Rank the list `succ` (pairs `(node, successor)`, sorted by node id, tail
/// successor = [`NIL`]) from `head` with unit weights: the head gets rank 0,
/// its successor 1, and so on.  Returns `(node, rank)` sorted by node id.
pub fn list_rank(
    succ: &ExtVec<(u64, u64)>,
    head: u64,
    cfg: &SortConfig,
) -> Result<ExtVec<(u64, u64)>> {
    // Attach unit weights.
    let mut w: ExtVecWriter<(u64, u64, i64)> = ExtVecWriter::new(succ.device().clone());
    let mut r = succ.reader();
    while let Some((id, s)) = r.try_next()? {
        w.push((id, s, 1))?;
    }
    let nodes = w.finish()?;
    let ranks = list_rank_weighted(&nodes, head, cfg)?;
    nodes.free()?;
    // Unit ranks are nonnegative; convert to u64.
    let mut out: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(succ.device().clone());
    let mut r = ranks.reader();
    while let Some((id, rank)) = r.try_next()? {
        debug_assert!(rank >= 0);
        out.push((id, rank as u64))?;
    }
    drop(r);
    ranks.free()?;
    out.finish()
}

/// Weighted list ranking: input records `(node, successor, weight)` sorted
/// by node id; `rank(head) = 0` and `rank(succ(v)) = rank(v) + weight(v)`.
/// Returns `(node, rank)` sorted by node id.  `O(Sort(N))` I/Os.
pub fn list_rank_weighted(
    nodes: &ExtVec<(u64, u64, i64)>,
    head: u64,
    cfg: &SortConfig,
) -> Result<ExtVec<(u64, i64)>> {
    rank_rec(nodes, head, cfg, 0)
}

fn rank_rec(
    nodes: &ExtVec<(u64, u64, i64)>,
    head: u64,
    cfg: &SortConfig,
    level: u64,
) -> Result<ExtVec<(u64, i64)>> {
    let device = nodes.device().clone();
    let n = nodes.len();
    assert!(level < 256, "list ranking failed to make progress");

    // Base case: rank in memory.
    if n as usize <= cfg.mem_records {
        let all = nodes.to_vec()?;
        let mut map: HashMap<u64, (u64, i64)> = HashMap::with_capacity(all.len());
        for (id, s, w) in &all {
            map.insert(*id, (*s, *w));
        }
        let mut ranks: Vec<(u64, i64)> = Vec::with_capacity(all.len());
        let mut cur = head;
        let mut acc = 0i64;
        for _ in 0..all.len() {
            let (s, w) = *map.get(&cur).expect("chain stays inside the list");
            ranks.push((cur, acc));
            acc += w;
            cur = s;
        }
        assert_eq!(cur, NIL, "list does not terminate after N hops");
        ranks.sort_unstable_by_key(|&(id, _)| id);
        return ExtVec::from_slice(device, &ranks);
    }

    // Predecessor pairs (succ, node): sorted by target and consumed once by
    // the removal scan, so the sort's final merge streams straight into it.
    let preds = {
        let mut w: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device.clone());
        let mut r = nodes.reader();
        while let Some((id, s, _)) = r.try_next()? {
            if s != NIL {
                w.push((s, id))?;
            }
        }
        w.finish()?
    };

    // Decide removals and emit splices / saves / survivors.
    let mut splices: ExtVecWriter<(u64, u64, i64)> = ExtVecWriter::new(device.clone()); // (pred, new_succ, w_removed)
    let mut saved: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device.clone()); // (pred, removed)
    let mut survivors: ExtVecWriter<(u64, u64, i64)> = ExtVecWriter::new(device.clone());
    let mut removed_count = 0u64;
    merge_sort_streaming(
        &preds,
        cfg,
        |a, b| a.0 < b.0,
        |rp| {
            let mut rn = nodes.reader();
            let mut cur_pred: Option<(u64, u64)> = rp.try_next()?;
            while let Some((id, s, w)) = rn.try_next()? {
                while cur_pred.is_some_and(|(t, _)| t < id) {
                    cur_pred = rp.try_next()?;
                }
                let pred = match cur_pred {
                    Some((t, p)) if t == id => Some(p),
                    _ => None,
                };
                let removable =
                    id != head && coin(level, id) && pred.is_some_and(|p| !coin(level, p));
                if removable {
                    let p = pred.expect("removable implies pred");
                    splices.push((p, s, w))?;
                    saved.push((p, id))?;
                    removed_count += 1;
                } else {
                    survivors.push((id, s, w))?;
                }
            }
            Ok(())
        },
    )?;
    preds.free()?;
    let splices = splices.finish()?;
    let saved = saved.finish()?;
    let survivors = survivors.finish()?;

    if removed_count == 0 {
        // Unlucky coins: retry with a fresh seed.
        splices.free()?;
        saved.free()?;
        survivors.free()?;
        return rank_rec(nodes, head, cfg, level + 1);
    }

    // Apply splices to survivors, remembering each spliced predecessor's
    // *old* weight (needed to reintegrate its removed successor).  The
    // sorted splices are consumed once, so the final merge streams in.
    let mut contracted: ExtVecWriter<(u64, u64, i64)> = ExtVecWriter::new(device.clone());
    let mut old_weights: ExtVecWriter<(u64, i64)> = ExtVecWriter::new(device.clone()); // (pred, w_old)
    merge_sort_streaming(
        &splices,
        cfg,
        |a, b| a.0 < b.0,
        |rx| {
            let mut rs = survivors.reader();
            let mut cur: Option<(u64, u64, i64)> = rx.try_next()?;
            while let Some((id, s, w)) = rs.try_next()? {
                match cur {
                    Some((p, new_s, w_removed)) if p == id => {
                        old_weights.push((id, w))?;
                        contracted.push((id, new_s, w + w_removed))?;
                        cur = rx.try_next()?;
                    }
                    _ => contracted.push((id, s, w))?,
                }
            }
            debug_assert!(cur.is_none(), "splice targeted a non-survivor");
            Ok(())
        },
    )?;
    survivors.free()?;
    splices.free()?;
    let contracted = contracted.finish()?;
    let old_weights = old_weights.finish()?; // sorted by pred (survivor order)

    // Recurse.
    let sub_ranks = rank_rec(&contracted, head, cfg, level + 1)?;
    contracted.free()?;

    // Reintegrate: rank(removed) = rank(pred) + old_weight(pred).  The
    // sorted saved pairs are consumed once, so the final merge streams in.
    let mut all_ranks: ExtVecWriter<(u64, i64)> = ExtVecWriter::new(device.clone());
    merge_sort_streaming(
        &saved,
        cfg,
        |a, b| a.0 < b.0,
        |rs| {
            let mut rr = sub_ranks.reader();
            let mut rw = old_weights.reader();
            let mut cur_saved: Option<(u64, u64)> = rs.try_next()?;
            let mut cur_w: Option<(u64, i64)> = rw.try_next()?;
            while let Some((id, rank)) = rr.try_next()? {
                all_ranks.push((id, rank))?;
                if cur_saved.is_some_and(|(p, _)| p == id) {
                    let (_, removed) = cur_saved.expect("checked");
                    let (_, w_old) = cur_w.expect("old weight recorded for every spliced pred");
                    debug_assert_eq!(cur_w.expect("checked").0, id);
                    all_ranks.push((removed, rank + w_old))?;
                    cur_saved = rs.try_next()?;
                    cur_w = rw.try_next()?;
                }
            }
            Ok(())
        },
    )?;
    sub_ranks.free()?;
    saved.free()?;
    old_weights.free()?;
    let all_ranks = all_ranks.finish()?;
    let result = merge_sort_by(&all_ranks, cfg, |a, b| a.0 < b.0)?;
    all_ranks.free()?;
    Ok(result)
}

/// Baseline: chase the successor pointers one node at a time — `Θ(N)`
/// random I/Os.  Requires dense node ids `0..N` (the pairs array is indexed
/// directly).  Returns `(node, rank)` sorted by node id.
pub fn list_rank_naive(
    succ: &ExtVec<(u64, u64)>,
    head: u64,
    cfg: &SortConfig,
) -> Result<ExtVec<(u64, u64)>> {
    let device = succ.device().clone();
    let mut out: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device);
    let mut cur = head;
    let mut rank = 0u64;
    while cur != NIL {
        let (id, s) = succ.get(cur)?; // one random I/O per hop
        debug_assert_eq!(id, cur, "dense id indexing violated");
        out.push((cur, rank))?;
        rank += 1;
        cur = s;
        assert!(rank <= succ.len(), "cycle detected");
    }
    let unsorted = out.finish()?;
    let sorted = merge_sort_by(&unsorted, cfg, |a, b| a.0 < b.0)?;
    unsorted.free()?;
    Ok(sorted)
}

/// Deterministic per-(level, id) coin flip (splitmix64 finalizer).
fn coin(level: u64, id: u64) -> bool {
    let mut z = id ^ level.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    z & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_list;
    use em_core::{bounds, EmConfig};
    use pdm::SharedDevice;

    fn device() -> SharedDevice {
        EmConfig::new(128, 8).ram_disk() // 8 triples / 16 pairs per block
    }

    fn reference_ranks(pairs: &[(u64, u64)], head: u64) -> Vec<(u64, u64)> {
        let succ: std::collections::HashMap<u64, u64> = pairs.iter().copied().collect();
        let mut out = Vec::new();
        let mut cur = head;
        let mut rank = 0;
        while cur != NIL {
            out.push((cur, rank));
            rank += 1;
            cur = succ[&cur];
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn ranks_random_list() {
        let d = device();
        let (list, head) = random_list(d.clone(), 2000, 71).unwrap();
        let cfg = SortConfig::new(128);
        let ranks = list_rank(&list, head, &cfg).unwrap();
        assert_eq!(
            ranks.to_vec().unwrap(),
            reference_ranks(&list.to_vec().unwrap(), head)
        );
    }

    #[test]
    fn small_lists_hit_base_case() {
        let d = device();
        for n in [1u64, 2, 5, 64] {
            let (list, head) = random_list(d.clone(), n, n).unwrap();
            let ranks = list_rank(&list, head, &SortConfig::new(128)).unwrap();
            assert_eq!(
                ranks.to_vec().unwrap(),
                reference_ranks(&list.to_vec().unwrap(), head),
                "n={n}"
            );
        }
    }

    #[test]
    fn weighted_ranks_including_negative() {
        let d = device();
        // List 0 → 1 → 2 → 3 with weights +5, −2, +7, (tail weight unused).
        let nodes = ExtVec::from_slice(
            d,
            &[(0u64, 1u64, 5i64), (1, 2, -2), (2, 3, 7), (3, NIL, 100)],
        )
        .unwrap();
        let ranks = list_rank_weighted(&nodes, 0, &SortConfig::new(128)).unwrap();
        assert_eq!(
            ranks.to_vec().unwrap(),
            vec![(0, 0), (1, 5), (2, 3), (3, 10)]
        );
    }

    #[test]
    fn weighted_large_forced_contraction() {
        let d = device();
        let (list, head) = random_list(d.clone(), 3000, 73).unwrap();
        // Weight = id so the prefix sums are distinctive.
        let mut w: ExtVecWriter<(u64, u64, i64)> = ExtVecWriter::new(d.clone());
        let mut r = list.reader();
        while let Some((id, s)) = r.try_next().unwrap() {
            w.push((id, s, id as i64)).unwrap();
        }
        let nodes = w.finish().unwrap();
        let cfg = SortConfig::new(100); // << N: forces many contraction levels
        let ranks = list_rank_weighted(&nodes, head, &cfg)
            .unwrap()
            .to_vec()
            .unwrap();
        // Reference.
        let pairs = list.to_vec().unwrap();
        let succ: std::collections::HashMap<u64, u64> = pairs.iter().copied().collect();
        let mut expect = Vec::new();
        let mut cur = head;
        let mut acc = 0i64;
        while cur != NIL {
            expect.push((cur, acc));
            acc += cur as i64;
            cur = succ[&cur];
        }
        expect.sort_unstable();
        assert_eq!(ranks, expect);
    }

    #[test]
    fn naive_matches_contraction() {
        let d = device();
        let (list, head) = random_list(d.clone(), 800, 77).unwrap();
        let cfg = SortConfig::new(128);
        let a = list_rank(&list, head, &cfg).unwrap().to_vec().unwrap();
        let b = list_rank_naive(&list, head, &cfg)
            .unwrap()
            .to_vec()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn contraction_beats_naive_on_io() {
        // A realistic block size (B = 256 pairs) — with tiny blocks the
        // constant factors of sorting exceed N and pointer chasing wins,
        // which is exactly the crossover the survey describes.
        let d = EmConfig::new(4096, 16).ram_disk();
        let n = 65_536u64;
        let (list, head) = random_list(d.clone(), n, 79).unwrap();
        let cfg = SortConfig::new(8192);

        let before = d.stats().snapshot();
        list_rank_naive(&list, head, &cfg).unwrap();
        let naive = d.stats().snapshot().since(&before).total();

        let before = d.stats().snapshot();
        list_rank(&list, head, &cfg).unwrap();
        let smart = d.stats().snapshot().since(&before).total();

        assert!(
            naive as f64 >= n as f64,
            "naive must pay ~1 I/O per hop, got {naive}"
        );
        assert!(
            smart < naive,
            "contraction ({smart}) should beat pointer chasing ({naive})"
        );
        // And stay within a constant of Sort(N).  The constant is genuinely
        // large (~4 sorts per contraction level over ~4N total records, and
        // the triple records are 3× the size of the u64s the bound counts);
        // the survey itself notes list ranking's constants are substantial.
        let bound = bounds::sort(n, 8192, 256);
        assert!((smart as f64) < 80.0 * bound, "smart={smart} bound={bound}");
    }

    #[test]
    fn temporaries_freed() {
        let d = device();
        let (list, head) = random_list(d.clone(), 2000, 81).unwrap();
        let before = d.allocated_blocks();
        let ranks = list_rank(&list, head, &SortConfig::new(100)).unwrap();
        assert_eq!(d.allocated_blocks(), before + ranks.num_blocks() as u64);
    }
}
