//! Minimum spanning forest by external Borůvka rounds.
//!
//! Every round, each component selects its minimum-weight incident edge
//! (one sort + one grouped scan), those edges join the forest, and the
//! components they connect are contracted exactly as in
//! [`connected_components`](crate::connected_components) — hook, pointer-
//! double, relabel.  Components at least halve per round, so
//!
//! ```text
//! I/Os = O(Sort(E) · log(V))
//! ```
//!
//! matching the survey's MSF bound (its refinements shave the log to
//! log(V/M); our base case — finish in memory once the contracted graph
//! fits — implements exactly that cutoff).
//!
//! Ties are broken by edge id, making every weight distinct, which is what
//! guarantees that the selected-edge graph has no cycles other than
//! mutual (2-cycle) selections — resolved by keeping the smaller label as
//! the root.

use em_core::{ExtVec, ExtVecWriter};
use emsort::{merge_sort_by, merge_sort_streaming, SortConfig};
use pdm::Result;

use crate::util::join_left_stream;

/// Compute a minimum spanning forest of the undirected weighted graph
/// `edges` (`(u, v, w)`, dense vertex ids `0..n`).  Returns the forest's
/// edges as `(u, v, w)` in input order.  `O(Sort(E)·log V)` I/Os.
pub fn minimum_spanning_forest(
    edges: &ExtVec<(u64, u64, u64)>,
    n: u64,
    cfg: &SortConfig,
) -> Result<ExtVec<(u64, u64, u64)>> {
    let device = edges.device().clone();

    // Working edges carry (label_a, label_b, weight, original edge id).
    let mut work: ExtVec<(u64, u64, u64, u64)> = {
        let mut w: ExtVecWriter<(u64, u64, u64, u64)> = ExtVecWriter::new(device.clone());
        let mut r = edges.reader();
        let mut id = 0u64;
        while let Some((a, b, wt)) = r.try_next()? {
            assert!(a < n && b < n, "vertex id out of range");
            if a != b {
                w.push((a, b, wt, id))?;
            }
            id += 1;
        }
        w.finish()?
    };
    // Chosen original-edge ids accumulate here.
    let mut chosen: ExtVecWriter<u64> = ExtVecWriter::new(device.clone());

    for round in 0.. {
        assert!(round < 64, "Borůvka failed to converge");
        if work.is_empty() {
            break;
        }
        // Base case: finish in memory.
        if work.len() as usize <= cfg.mem_records / 2 {
            for id in in_memory_msf(&work)? {
                chosen.push(id)?;
            }
            work.free()?;
            work = ExtVec::new(device.clone());
            break;
        }

        // Minimum incident edge per label: arcs sorted by (label, w, id).
        // The sorted arcs are consumed once by the grouped scan, so the
        // sort's final merge streams straight into it.
        let arcs = {
            let mut w: ExtVecWriter<(u64, u64, u64, u64)> = ExtVecWriter::new(device.clone());
            let mut r = work.reader();
            while let Some((a, b, wt, id)) = r.try_next()? {
                w.push((a, b, wt, id))?;
                w.push((b, a, wt, id))?;
            }
            w.finish()?
        };
        // First arc of each source group is its minimum edge: hook + choose.
        let mut hooks_w: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device.clone()); // (label, parent)
        let arc_less =
            |x: &(u64, u64, u64, u64), y: &(u64, u64, u64, u64)| (x.0, x.2, x.3) < (y.0, y.2, y.3);
        merge_sort_streaming(&arcs, cfg, arc_less, |r| {
            let mut cur_src = u64::MAX;
            while let Some((src, dst, _wt, id)) = r.try_next()? {
                if src != cur_src {
                    cur_src = src;
                    hooks_w.push((src, dst))?;
                    chosen.push(id)?;
                }
            }
            Ok(())
        })?;
        arcs.free()?;
        let hooks = hooks_w.finish()?; // sorted by label (group order)

        // Break 2-cycles (mutual selections): if parent(parent(x)) == x,
        // the smaller label becomes a root.
        let parents = break_two_cycles(hooks, cfg)?;
        let parents = compress(parents, cfg)?;

        // Relabel edges through the parent map; drop self-loops and keep,
        // per label pair, only the minimum edge (pruning parallels keeps
        // the working set small without affecting the forest).
        work = relabel(work, &parents, cfg)?;
        parents.free()?;
    }
    work.free()?;

    // Map chosen ids back to original edges: sort + dedupe + merge with an
    // id-indexed pass over the input; the sorted ids are consumed once, so
    // the sort's final merge streams into the pass.
    let chosen = chosen.finish()?;
    let mut out: ExtVecWriter<(u64, u64, u64)> = ExtVecWriter::new(device);
    merge_sort_streaming(
        &chosen,
        cfg,
        |a, b| a < b,
        |ids| {
            let mut cur = ids.try_next()?;
            let mut r = edges.reader();
            let mut idx = 0u64;
            while let Some(e) = r.try_next()? {
                let mut take = false;
                while cur == Some(idx) {
                    take = true;
                    cur = ids.try_next()?; // skip duplicates of the same id
                }
                if take {
                    out.push(e)?;
                }
                idx += 1;
            }
            debug_assert!(cur.is_none(), "chosen id beyond input range");
            Ok(())
        },
    )?;
    chosen.free()?;
    out.finish()
}

/// Remove one side of every mutual (x ⇄ p) selection, keeping the smaller
/// label as a root.
fn break_two_cycles(hooks: ExtVec<(u64, u64)>, cfg: &SortConfig) -> Result<ExtVec<(u64, u64)>> {
    let device = hooks.device().clone();
    // joined: (p, x, pp|MAX) with pp = parent(p); the sorted probe side
    // streams straight off the final merge pass into the join.
    let swapped = {
        let mut w: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device.clone());
        let mut r = hooks.reader();
        while let Some((x, p)) = r.try_next()? {
            w.push((p, x))?;
        }
        w.finish()?
    };
    let joined = merge_sort_streaming(
        &swapped,
        cfg,
        |a, b| a.0 < b.0,
        |s| join_left_stream(s, &hooks, u64::MAX),
    )?;
    swapped.free()?;
    let filtered = {
        let mut w: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device);
        let mut r = joined.reader();
        while let Some((p, x, pp)) = r.try_next()? {
            // Entry represents hook x → p.  Drop it iff p → x too and
            // x < p (x becomes the root of the merged pair).
            if !(pp == x && x < p) {
                w.push((x, p))?;
            }
        }
        let unsorted = w.finish()?;
        let sorted = merge_sort_by(&unsorted, cfg, |a, b| a.0 < b.0)?;
        unsorted.free()?;
        sorted
    };
    joined.free()?;
    hooks.free()?;
    Ok(filtered)
}

/// Pointer-double a parent map until every entry points at a root
/// (duplicated from `cc` with ownership tweaks; both are `O(Sort·log)`).
fn compress(mut parents: ExtVec<(u64, u64)>, cfg: &SortConfig) -> Result<ExtVec<(u64, u64)>> {
    loop {
        let device = parents.device().clone();
        let swapped = {
            let mut w: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device.clone());
            let mut r = parents.reader();
            while let Some((x, p)) = r.try_next()? {
                w.push((p, x))?;
            }
            w.finish()?
        };
        // The sorted probe side streams straight into the join.
        let joined = merge_sort_streaming(
            &swapped,
            cfg,
            |a, b| a.0 < b.0,
            |s| join_left_stream(s, &parents, u64::MAX),
        )?;
        swapped.free()?;
        let mut changed = false;
        let next = {
            let mut w: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device);
            let mut r = joined.reader();
            while let Some((p, x, pp)) = r.try_next()? {
                if pp == u64::MAX {
                    w.push((x, p))?;
                } else {
                    changed = true;
                    w.push((x, pp))?;
                }
            }
            let unsorted = w.finish()?;
            let sorted = merge_sort_by(&unsorted, cfg, |a, b| a.0 < b.0)?;
            unsorted.free()?;
            sorted
        };
        joined.free()?;
        parents.free()?;
        parents = next;
        if !changed {
            return Ok(parents);
        }
    }
}

/// Rewrite both endpoints of the working edges through the parent map,
/// dropping self-loops and keeping only the lightest edge per label pair.
fn relabel(
    work: ExtVec<(u64, u64, u64, u64)>,
    parents: &ExtVec<(u64, u64)>,
    cfg: &SortConfig,
) -> Result<ExtVec<(u64, u64, u64, u64)>> {
    let device = work.device().clone();
    // Join on endpoint a: records keyed (a, (b, w, id)); the sorted probe
    // side streams straight into the join.
    let keyed_a = {
        let mut w: ExtVecWriter<(u64, (u64, u64, u64))> = ExtVecWriter::new(device.clone());
        let mut r = work.reader();
        while let Some((a, b, wt, id)) = r.try_next()? {
            w.push((a, (b, wt, id)))?;
        }
        w.finish()?
    };
    work.free()?;
    let ja = merge_sort_streaming(
        &keyed_a,
        cfg,
        |x, y| x.0 < y.0,
        |s| {
            join_left_stream(s, parents, u64::MAX) // (a, (b,w,id), pa|MAX)
        },
    )?;
    keyed_a.free()?;
    let keyed_b = {
        let mut w: ExtVecWriter<(u64, (u64, u64, u64))> = ExtVecWriter::new(device.clone());
        let mut r = ja.reader();
        while let Some((a, (b, wt, id), pa)) = r.try_next()? {
            let a2 = if pa == u64::MAX { a } else { pa };
            w.push((b, (a2, wt, id)))?;
        }
        w.finish()?
    };
    ja.free()?;
    let jb = merge_sort_streaming(
        &keyed_b,
        cfg,
        |x, y| x.0 < y.0,
        |s| join_left_stream(s, parents, u64::MAX),
    )?;
    keyed_b.free()?;
    let relabeled = {
        let mut w: ExtVecWriter<(u64, u64, u64, u64)> = ExtVecWriter::new(device.clone());
        let mut r = jb.reader();
        while let Some((b, (a2, wt, id), pb)) = r.try_next()? {
            let b2 = if pb == u64::MAX { b } else { pb };
            if a2 != b2 {
                w.push((a2.min(b2), a2.max(b2), wt, id))?;
            }
        }
        w.finish()?
    };
    jb.free()?;
    // Keep only the lightest edge per label pair: sort + prune fused.
    let pruned = merge_sort_streaming(
        &relabeled,
        cfg,
        |x: &(u64, u64, u64, u64), y: &(u64, u64, u64, u64)| {
            (x.0, x.1, x.2, x.3) < (y.0, y.1, y.2, y.3)
        },
        |r| {
            let mut w: ExtVecWriter<(u64, u64, u64, u64)> = ExtVecWriter::new(device);
            let mut cur: Option<(u64, u64)> = None;
            while let Some(e) = r.try_next()? {
                if cur != Some((e.0, e.1)) {
                    cur = Some((e.0, e.1));
                    w.push(e)?;
                }
            }
            w.finish()
        },
    )?;
    relabeled.free()?;
    Ok(pruned)
}

/// In-memory Kruskal on the contracted edge set; returns chosen original
/// edge ids.
fn in_memory_msf(work: &ExtVec<(u64, u64, u64, u64)>) -> Result<Vec<u64>> {
    let mut es = work.to_vec()?;
    es.sort_unstable_by_key(|&(_, _, w, id)| (w, id));
    let mut parent: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    fn find(p: &mut std::collections::HashMap<u64, u64>, x: u64) -> u64 {
        let q = *p.entry(x).or_insert(x);
        if q == x {
            return x;
        }
        let r = find(p, q);
        p.insert(x, r);
        r
    }
    let mut out = Vec::new();
    for (a, b, _w, id) in es {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent.insert(ra.max(rb), ra.min(rb));
            out.push(id);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::EmConfig;
    use pdm::SharedDevice;
    use rand::prelude::*;

    fn device() -> SharedDevice {
        EmConfig::new(256, 16).ram_disk()
    }

    fn reference_msf_weight(edges: &[(u64, u64, u64)], n: u64) -> (u64, usize) {
        // Kruskal with (w, index) tie-break: total weight and edge count.
        let mut idx: Vec<usize> = (0..edges.len()).collect();
        idx.sort_by_key(|&i| (edges[i].2, i));
        let mut parent: Vec<u64> = (0..n).collect();
        fn find(p: &mut Vec<u64>, x: u64) -> u64 {
            if p[x as usize] != x {
                let r = find(p, p[x as usize]);
                p[x as usize] = r;
            }
            p[x as usize]
        }
        let mut total = 0;
        let mut count = 0;
        for i in idx {
            let (a, b, w) = edges[i];
            if a == b {
                continue;
            }
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra.max(rb) as usize] = ra.min(rb);
                total += w;
                count += 1;
            }
        }
        (total, count)
    }

    fn check_is_spanning_forest(msf: &[(u64, u64, u64)], edges: &[(u64, u64, u64)], n: u64) {
        // Same weight and cardinality as Kruskal, acyclic, and spans the
        // same components.
        let (ref_w, ref_c) = reference_msf_weight(edges, n);
        let got_w: u64 = msf.iter().map(|e| e.2).sum();
        assert_eq!(msf.len(), ref_c, "edge count");
        assert_eq!(got_w, ref_w, "total weight");
        // Acyclicity via union-find over the chosen edges.
        let mut parent: Vec<u64> = (0..n).collect();
        fn find(p: &mut Vec<u64>, x: u64) -> u64 {
            if p[x as usize] != x {
                let r = find(p, p[x as usize]);
                p[x as usize] = r;
            }
            p[x as usize]
        }
        for &(a, b, _) in msf {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            assert_ne!(ra, rb, "cycle in forest");
            parent[ra.max(rb) as usize] = ra.min(rb);
        }
    }

    #[test]
    fn triangle_drops_heaviest() {
        let d = device();
        let edges = vec![(0u64, 1u64, 1u64), (1, 2, 2), (0, 2, 3)];
        let g = ExtVec::from_slice(d, &edges).unwrap();
        let msf = minimum_spanning_forest(&g, 3, &SortConfig::new(256)).unwrap();
        let mut got = msf.to_vec().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1, 1), (1, 2, 2)]);
    }

    #[test]
    fn random_graphs_match_kruskal_weight() {
        let d = device();
        for seed in [171u64, 172, 173] {
            let n = 600u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut edges = Vec::new();
            for v in 1..n {
                edges.push((rng.gen_range(0..v), v, rng.gen_range(1..1000)));
            }
            for _ in 0..1200 {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b {
                    edges.push((a.min(b), a.max(b), rng.gen_range(1..1000)));
                }
            }
            let g = ExtVec::from_slice(d.clone(), &edges).unwrap();
            // Small memory to force external rounds.
            let msf = minimum_spanning_forest(&g, n, &SortConfig::new(256)).unwrap();
            check_is_spanning_forest(&msf.to_vec().unwrap(), &edges, n);
        }
    }

    #[test]
    fn disconnected_graph_yields_forest() {
        let d = device();
        let edges = vec![(0u64, 1u64, 5u64), (1, 2, 3), (0, 2, 4), (3, 4, 7)];
        let g = ExtVec::from_slice(d, &edges).unwrap();
        let msf = minimum_spanning_forest(&g, 5, &SortConfig::new(256)).unwrap();
        let got = msf.to_vec().unwrap();
        check_is_spanning_forest(&got, &edges, 5);
        assert_eq!(got.len(), 3); // 2 + 1 edges across the two components
    }

    #[test]
    fn duplicate_weights_handled_by_id_tiebreak() {
        let d = device();
        let mut rng = StdRng::seed_from_u64(174);
        let n = 400u64;
        let mut edges = Vec::new();
        for v in 1..n {
            edges.push((rng.gen_range(0..v), v, 1u64)); // all weights equal
        }
        for _ in 0..800 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                edges.push((a.min(b), a.max(b), 1));
            }
        }
        let g = ExtVec::from_slice(d, &edges).unwrap();
        let msf = minimum_spanning_forest(&g, n, &SortConfig::new(200)).unwrap();
        let got = msf.to_vec().unwrap();
        assert_eq!(got.len() as u64, n - 1, "spanning tree size");
        check_is_spanning_forest(&got, &edges, n);
    }

    #[test]
    fn empty_and_single_edge() {
        let d = device();
        let g: ExtVec<(u64, u64, u64)> = ExtVec::new(d.clone());
        assert!(minimum_spanning_forest(&g, 3, &SortConfig::new(256))
            .unwrap()
            .is_empty());
        let g = ExtVec::from_slice(d, &[(0u64, 1u64, 9u64)]).unwrap();
        let msf = minimum_spanning_forest(&g, 2, &SortConfig::new(256)).unwrap();
        assert_eq!(msf.to_vec().unwrap(), vec![(0, 1, 9)]);
    }

    #[test]
    fn self_loops_ignored() {
        let d = device();
        let g = ExtVec::from_slice(d, &[(0u64, 0u64, 1u64), (0, 1, 2)]).unwrap();
        let msf = minimum_spanning_forest(&g, 2, &SortConfig::new(256)).unwrap();
        assert_eq!(msf.to_vec().unwrap(), vec![(0, 1, 2)]);
    }
}
