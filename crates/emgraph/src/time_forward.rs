//! Time-forward processing: evaluating a DAG with an external priority
//! queue.
//!
//! Given a DAG whose vertices are numbered in topological order, compute a
//! value at every vertex as a function of its label and the values of its
//! in-neighbours.  In internal memory this is a trivial sweep; externally,
//! fetching each predecessor's value on demand would cost one I/O per edge.
//! The survey's technique instead *sends values forward in time*: when
//! vertex `u` is evaluated, its value is inserted into an external priority
//! queue once per out-edge, keyed by the destination; when `v`'s turn
//! comes, its incoming values are exactly the queue's current minima.
//!
//! Total cost: `O(Sort(E))` I/Os (experiment F14).  This pattern powers
//! maximal-independent-set, expression-DAG evaluation, and more.

use em_core::{ExtVec, ExtVecWriter};
use emsort::{merge_sort_streaming, SortConfig};
use emtree::ExtPriorityQueue;
use pdm::Result;

/// Evaluate a topologically-numbered DAG.
///
/// * `labels` — `(vertex, label)` for every vertex, sorted by vertex id.
/// * `edges` — `(src, dst)` with `src < dst` (any order; sorted internally).
/// * `f(vertex, label, incoming)` — the local update; `incoming` holds the
///   values of all in-neighbours, sorted by source vertex id.
///
/// Returns `(vertex, value)` sorted by vertex id.
pub fn time_forward<F>(
    labels: &ExtVec<(u64, u64)>,
    edges: &ExtVec<(u64, u64)>,
    cfg: &SortConfig,
    mut f: F,
) -> Result<ExtVec<(u64, u64)>>
where
    F: FnMut(u64, u64, &[u64]) -> u64,
{
    let device = labels.device().clone();

    // Messages travel through the EPQ as (dst, src, value).
    let mut pq: ExtPriorityQueue<(u64, u64, u64)> =
        ExtPriorityQueue::new(device.clone(), cfg.mem_records)?;

    let mut out: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device);
    // The sorted edge list is consumed in exactly one forward pass, so the
    // final merge is fused into the sweep instead of materializing it.
    merge_sort_streaming(
        edges,
        cfg,
        |a, b| a < b,
        |stream| {
            let mut pending_edge: Option<(u64, u64)> = stream.try_next()?;
            let mut incoming: Vec<u64> = Vec::new();

            let mut lr = labels.reader();
            while let Some((v, label)) = lr.try_next()? {
                // Collect incoming values (sorted by src because the EPQ orders
                // by (dst, src, value)).
                incoming.clear();
                while pq.peek()?.is_some_and(|(d, _, _)| d == v) {
                    let (_, _, value) = pq.pop()?.expect("peeked");
                    incoming.push(value);
                }
                let value = f(v, label, &incoming);
                out.push((v, value))?;
                // Forward the value along out-edges.
                while pending_edge.is_some_and(|(s, _)| s == v) {
                    let (s, d) = pending_edge.expect("checked");
                    assert!(d > s, "edge does not respect topological numbering");
                    pq.push((d, s, value))?;
                    pending_edge = stream.try_next()?;
                }
                // Edges from vertices we already passed would be malformed input.
                assert!(
                    pending_edge.is_none_or(|(s, _)| s >= v),
                    "edge source out of topological order"
                );
            }
            assert!(
                pending_edge.is_none(),
                "edge references vertex beyond the label array"
            );
            Ok(())
        },
    )?;
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_dag;
    use em_core::EmConfig;
    use pdm::SharedDevice;

    fn device() -> SharedDevice {
        EmConfig::new(128, 16).ram_disk()
    }

    fn vertex_labels(d: &SharedDevice, n: u64, f: impl Fn(u64) -> u64) -> ExtVec<(u64, u64)> {
        let v: Vec<(u64, u64)> = (0..n).map(|i| (i, f(i))).collect();
        ExtVec::from_slice(d.clone(), &v).unwrap()
    }

    #[test]
    fn longest_path_in_dag() {
        let d = device();
        let n = 2000u64;
        let dag = random_dag(d.clone(), n, 3, 101).unwrap();
        let labels = vertex_labels(&d, n, |_| 0);
        let cfg = SortConfig::new(256);
        // value(v) = longest path ending at v.
        let got = time_forward(&labels, &dag, &cfg, |_, _, incoming| {
            incoming.iter().copied().max().map_or(0, |m| m + 1)
        })
        .unwrap();
        // Reference.
        let edges = dag.to_vec().unwrap();
        let mut best = vec![0u64; n as usize];
        for (u, v) in edges {
            best[v as usize] = best[v as usize].max(best[u as usize] + 1);
        }
        let expect: Vec<(u64, u64)> = (0..n).map(|v| (v, best[v as usize])).collect();
        assert_eq!(got.to_vec().unwrap(), expect);
    }

    #[test]
    fn path_count_mod_prime() {
        let d = device();
        let n = 1000u64;
        let dag = random_dag(d.clone(), n, 2, 103).unwrap();
        // label = 1 for the unique source 0 (path of length 0), else 0.
        let labels = vertex_labels(&d, n, |v| u64::from(v == 0));
        let cfg = SortConfig::new(256);
        const P: u64 = 1_000_000_007;
        let got = time_forward(&labels, &dag, &cfg, |_, label, incoming| {
            (label + incoming.iter().sum::<u64>()) % P
        })
        .unwrap();
        let edges = dag.to_vec().unwrap();
        let mut cnt = vec![0u64; n as usize];
        cnt[0] = 1;
        for (u, v) in edges {
            cnt[v as usize] = (cnt[v as usize] + cnt[u as usize]) % P;
        }
        let expect: Vec<(u64, u64)> = (0..n).map(|v| (v, cnt[v as usize])).collect();
        assert_eq!(got.to_vec().unwrap(), expect);
    }

    #[test]
    fn incoming_values_are_sorted_by_source() {
        let d = device();
        // Diamond: 0→3, 1→3, 2→3 with distinct values.
        let labels = vertex_labels(&d, 4, |v| v * 10);
        let dag = ExtVec::from_slice(d, &[(0u64, 3u64), (1, 3), (2, 3)]).unwrap();
        let cfg = SortConfig::new(128);
        let got = time_forward(&labels, &dag, &cfg, |v, label, incoming| {
            if v == 3 {
                // Expect values from sources 0,1,2 in that order.
                assert_eq!(incoming, &[0, 10, 20]);
            }
            label
        })
        .unwrap();
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn isolated_vertices_evaluate_with_no_incoming() {
        let d = device();
        let labels = vertex_labels(&d, 5, |v| v + 100);
        let dag: ExtVec<(u64, u64)> = ExtVec::new(d);
        let cfg = SortConfig::new(128);
        let got = time_forward(&labels, &dag, &cfg, |_, label, incoming| {
            assert!(incoming.is_empty());
            label
        })
        .unwrap();
        assert_eq!(
            got.to_vec().unwrap(),
            (0..5u64).map(|v| (v, v + 100)).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "topological")]
    fn backward_edge_rejected() {
        let d = device();
        let labels = vertex_labels(&d, 3, |_| 0);
        let dag = ExtVec::from_slice(d, &[(2u64, 1u64)]).unwrap();
        let _ = time_forward(&labels, &dag, &SortConfig::new(128), |_, l, _| l);
    }

    #[test]
    fn io_cost_scales_with_sort_not_edges() {
        // Realistic block size so Sort(E) ≪ E.
        let d = EmConfig::new(4096, 16).ram_disk();
        let n = 5000u64;
        let dag = random_dag(d.clone(), n, 4, 107).unwrap();
        let labels = vertex_labels(&d, n, |_| 0);
        let e = dag.len();
        let before = d.stats().snapshot();
        time_forward(&labels, &dag, &SortConfig::new(4096), |_, _, inc| {
            inc.len() as u64
        })
        .unwrap();
        let ios = d.stats().snapshot().since(&before).total();
        // Must be far below 1 I/O per edge.
        assert!(
            (ios as f64) < 0.5 * e as f64,
            "time-forward used {ios} I/Os for {e} edges"
        );
    }
}
