//! Merge-join helpers over sorted external arrays.
//!
//! Every algorithm in this crate is assembled from sorts (delegated to
//! `emsort`) plus the streaming joins below.  All joins consume their inputs
//! with one-block readers and emit with a one-block writer, so each costs
//! `O(scan)` I/Os.

use em_core::{ExtVec, ExtVecWriter, Record};
use emsort::SortedStream;
use pdm::Result;

/// Inner-join two arrays sorted by their `u64` key (`.0`): for every pair of
/// records `a = (k, x)` and `b = (k, y)` with equal keys, emit `(k, x, y)`.
///
/// `b`'s keys must be unique (it is the "dimension" side); `a` may repeat
/// keys.  Keys of `a` absent from `b` are dropped.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn join_unique<X: Record, Y: Record>(
    a: &ExtVec<(u64, X)>,
    b: &ExtVec<(u64, Y)>,
) -> Result<ExtVec<(u64, X, Y)>> {
    let mut out: ExtVecWriter<(u64, X, Y)> = ExtVecWriter::new(a.device().clone());
    let mut ra = a.reader();
    let mut rb = b.reader();
    let mut cur_b: Option<(u64, Y)> = rb.try_next()?;
    while let Some((k, x)) = ra.try_next()? {
        while cur_b.as_ref().is_some_and(|(bk, _)| *bk < k) {
            cur_b = rb.try_next()?;
        }
        if let Some((bk, y)) = &cur_b {
            if *bk == k {
                out.push((k, x, y.clone()))?;
            }
        }
    }
    out.finish()
}

/// Left-outer variant of [`join_unique`]: keys of `a` with no match in `b`
/// emit `(k, x, default)`.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn join_left<X: Record, Y: Record>(
    a: &ExtVec<(u64, X)>,
    b: &ExtVec<(u64, Y)>,
    default: Y,
) -> Result<ExtVec<(u64, X, Y)>> {
    let mut out: ExtVecWriter<(u64, X, Y)> = ExtVecWriter::new(a.device().clone());
    let mut ra = a.reader();
    let mut rb = b.reader();
    let mut cur_b: Option<(u64, Y)> = rb.try_next()?;
    while let Some((k, x)) = ra.try_next()? {
        while cur_b.as_ref().is_some_and(|(bk, _)| *bk < k) {
            cur_b = rb.try_next()?;
        }
        match &cur_b {
            Some((bk, y)) if *bk == k => out.push((k, x, y.clone()))?,
            _ => out.push((k, x, default.clone()))?,
        }
    }
    out.finish()
}

/// [`join_left`] with the probe side delivered as a [`SortedStream`]: `a`
/// arrives straight off a sort's final merge pass instead of being
/// materialized first, saving the probe side's write + re-read scans.
pub(crate) fn join_left_stream<X: Record, Y: Record, F>(
    a: &mut SortedStream<'_, (u64, X), F>,
    b: &ExtVec<(u64, Y)>,
    default: Y,
) -> Result<ExtVec<(u64, X, Y)>>
where
    F: Fn(&(u64, X), &(u64, X)) -> bool + Copy,
{
    let mut out: ExtVecWriter<(u64, X, Y)> = ExtVecWriter::new(b.device().clone());
    let mut rb = b.reader();
    let mut cur_b: Option<(u64, Y)> = rb.try_next()?;
    while let Some((k, x)) = a.try_next()? {
        while cur_b.as_ref().is_some_and(|(bk, _)| *bk < k) {
            cur_b = rb.try_next()?;
        }
        match &cur_b {
            Some((bk, y)) if *bk == k => out.push((k, x, y.clone()))?,
            _ => out.push((k, x, default.clone()))?,
        }
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::EmConfig;
    use pdm::SharedDevice;

    fn device() -> SharedDevice {
        EmConfig::new(128, 8).ram_disk()
    }

    #[test]
    fn join_unique_basic() {
        let d = device();
        let a = ExtVec::from_slice(d.clone(), &[(1u64, 10u64), (2, 20), (2, 21), (5, 50)]).unwrap();
        let b = ExtVec::from_slice(d, &[(1u64, 100u64), (2, 200), (3, 300)]).unwrap();
        let j = join_unique(&a, &b).unwrap();
        assert_eq!(
            j.to_vec().unwrap(),
            vec![(1, 10, 100), (2, 20, 200), (2, 21, 200)]
        );
    }

    #[test]
    fn join_left_fills_default() {
        let d = device();
        let a = ExtVec::from_slice(d.clone(), &[(1u64, 10u64), (4, 40)]).unwrap();
        let b = ExtVec::from_slice(d, &[(1u64, 100u64)]).unwrap();
        let j = join_left(&a, &b, u64::MAX).unwrap();
        assert_eq!(j.to_vec().unwrap(), vec![(1, 10, 100), (4, 40, u64::MAX)]);
    }

    #[test]
    fn join_empty_sides() {
        let d = device();
        let a: ExtVec<(u64, u64)> = ExtVec::new(d.clone());
        let b = ExtVec::from_slice(d.clone(), &[(1u64, 1u64)]).unwrap();
        assert!(join_unique(&a, &b).unwrap().is_empty());
        let a2 = ExtVec::from_slice(d.clone(), &[(1u64, 1u64)]).unwrap();
        let b2: ExtVec<(u64, u64)> = ExtVec::new(d);
        assert!(join_unique(&a2, &b2).unwrap().is_empty());
        assert_eq!(
            join_left(&a2, &b2, 9u64).unwrap().to_vec().unwrap(),
            vec![(1, 1, 9)]
        );
    }

    #[test]
    fn join_is_scan_cost() {
        let d = device();
        let a_data: Vec<(u64, u64)> = (0..1000u64).map(|i| (i, i)).collect();
        let a = ExtVec::from_slice(d.clone(), &a_data).unwrap();
        let b = ExtVec::from_slice(d.clone(), &a_data).unwrap();
        let before = d.stats().snapshot();
        let j = join_unique(&a, &b).unwrap();
        let ios = d.stats().snapshot().since(&before).total();
        assert_eq!(j.len(), 1000);
        // reads: a (125 blocks of 8 pairs) + b (125) ; writes: 1000 triples
        // at 5/block = 200 → well under 3 scans.
        assert!(ios <= 460, "join cost {ios}");
    }
}
