//! # `emgraph` — external-memory graph algorithms
//!
//! The survey's batched graph-processing toolkit.  The unifying theme is
//! that *pointer chasing is death* in external memory (`Ω(1)` I/Os per
//! hop), so every algorithm here is recast as a short pipeline of sorts,
//! scans and merge-joins over edge lists — paying `O(Sort(N))` total instead
//! of `O(N)`:
//!
//! * [`list_rank`] / [`list_rank_weighted`] — list ranking by randomized
//!   independent-set contraction: `O(Sort(N))` I/Os (experiment F9), versus
//!   the naive `Θ(N)` pointer walk.
//! * [`euler_tour`] and [`tree_depths`] — the Euler-tour technique: tree
//!   problems (depth, subtree membership) become list-ranking problems.
//! * [`time_forward`] — evaluate a topologically-ordered DAG by shipping
//!   values "forward in time" through an external priority queue:
//!   `O(Sort(E))` I/Os (experiment F14).
//! * [`bfs_mr`] — Munagala–Ranade breadth-first search:
//!   `O(V + Sort(E))` I/Os versus the naive `Ω(E)` (experiment F10).
//! * [`connected_components`] — hook-and-contract (Borůvka-style) labeling
//!   in `O(Sort(E) · log(V))` I/Os (experiment F11).
//! * [`gen`] — deterministic workload generators (lists, trees, random
//!   graphs, grids) shared by tests, examples and benches.
//!
//! Graphs are plain external edge lists: `ExtVec<(u64, u64)>` with dense
//! vertex ids `0..V`.  Undirected graphs store each edge once; algorithms
//! symmetrize internally when they need arcs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bfs;
mod cc;
mod euler;
pub mod gen;
mod list_ranking;
mod mis;
mod mst;
mod sssp;
mod time_forward;
mod util;

pub use bfs::{bfs_mr, bfs_naive};
pub use cc::connected_components;
pub use euler::{euler_tour, tree_depths, EulerTour};
pub use list_ranking::{list_rank, list_rank_naive, list_rank_weighted};
pub use mis::maximal_independent_set;
pub use mst::minimum_spanning_forest;
pub use sssp::sssp;
pub use time_forward::time_forward;
