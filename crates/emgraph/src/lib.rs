//! # `emgraph` — external-memory graph algorithms
//!
//! The survey's batched graph-processing toolkit.  The unifying theme is
//! that *pointer chasing is death* in external memory (`Ω(1)` I/Os per
//! hop), so every algorithm here is recast as a short pipeline of sorts,
//! scans and merge-joins over edge lists — paying `O(Sort(N))` total instead
//! of `O(N)`:
//!
//! * [`list_rank`] / [`list_rank_weighted`] — list ranking by randomized
//!   independent-set contraction: `O(Sort(N))` I/Os (experiment F9), versus
//!   the naive `Θ(N)` pointer walk.
//! * [`euler_tour`] and [`tree_depths`] — the Euler-tour technique: tree
//!   problems (depth, subtree membership) become list-ranking problems.
//! * [`time_forward`] — evaluate a topologically-ordered DAG by shipping
//!   values "forward in time" through an external priority queue:
//!   `O(Sort(E))` I/Os (experiment F14).
//! * [`bfs_mr`] — Munagala–Ranade breadth-first search:
//!   `O(V + Sort(E))` I/Os versus the naive `Ω(E)` (experiment F10).
//! * [`connected_components`] — hook-and-contract (Borůvka-style) labeling
//!   in `O(Sort(E) · log(V))` I/Os (experiment F11).
//! * [`gen`] — deterministic workload generators (lists, trees, random
//!   graphs, grids) shared by tests, examples and benches.
//!
//! Graphs are plain external edge lists: `ExtVec<(u64, u64)>` with dense
//! vertex ids `0..V`.  Undirected graphs store each edge once; algorithms
//! symmetrize internally when they need arcs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use emsort::{OverlapConfig, SortConfig};

mod bfs;
mod cc;
mod euler;
pub mod gen;
mod list_ranking;
mod mis;
mod mst;
mod sssp;
mod time_forward;
mod util;

pub use bfs::{bfs_mr, bfs_naive};
pub use cc::connected_components;
pub use euler::{euler_tour, tree_depths, EulerTour};
pub use list_ranking::{list_rank, list_rank_naive, list_rank_weighted};
pub use mis::maximal_independent_set;
pub use mst::minimum_spanning_forest;
pub use sssp::sssp;
pub use time_forward::time_forward;

/// One knob for every sort inside a graph round.
///
/// Graph algorithms issue many sorts per round (symmetrize, hook, join,
/// relabel, …), each taking the same [`SortConfig`].  `GraphConfig` is the
/// single place where the memory budget, per-disk overlap depth, and
/// forecasting policy for all of them are chosen, so benchmarks and tests
/// can switch a whole graph computation between synchronous and overlapped
/// I/O with one call.
///
/// ```
/// use emgraph::GraphConfig;
///
/// let sync = GraphConfig::sync(4096).sort_config();
/// let over = GraphConfig::overlapped(4096, 2).sort_config();
/// assert!(!sync.overlap.enabled());
/// assert!(over.overlap.enabled());
/// ```
#[derive(Debug, Clone)]
pub struct GraphConfig {
    /// Internal-memory budget, in records, for each sort in the round.
    pub mem_records: usize,
    /// Read-ahead/write-behind depth in blocks per disk; 0 = synchronous.
    pub overlap_depth: usize,
    /// Forecasting-driven prefetch during merge passes.
    pub forecast: bool,
    /// Pipeline fusion: stream each sort's final merge pass straight into
    /// the consuming scan (the default).  `false` re-materializes every
    /// sorted intermediate — the pre-fusion cost, kept for A/B benchmarks.
    pub fusion: bool,
}

impl GraphConfig {
    /// Synchronous-I/O rounds: overlap off, forecasting on.
    pub fn sync(mem_records: usize) -> Self {
        GraphConfig {
            mem_records,
            overlap_depth: 0,
            forecast: true,
            fusion: true,
        }
    }

    /// Overlapped rounds: `depth` blocks of read-ahead and write-behind per
    /// disk, forecasting on.
    pub fn overlapped(mem_records: usize, depth: usize) -> Self {
        GraphConfig {
            mem_records,
            overlap_depth: depth,
            forecast: true,
            fusion: true,
        }
    }

    /// Toggle forecasting-driven prefetch.
    pub fn with_forecast(mut self, forecast: bool) -> Self {
        self.forecast = forecast;
        self
    }

    /// Toggle pipeline fusion (see [`GraphConfig::fusion`]).
    pub fn with_fusion(mut self, fusion: bool) -> Self {
        self.fusion = fusion;
        self
    }

    /// The [`SortConfig`] every sort inside the graph round runs with.
    pub fn sort_config(&self) -> SortConfig {
        let overlap = if self.overlap_depth == 0 {
            OverlapConfig::off()
        } else {
            OverlapConfig::symmetric(self.overlap_depth)
        };
        SortConfig::new(self.mem_records)
            .with_overlap(overlap)
            .with_forecast(self.forecast)
            .with_fusion(self.fusion)
    }
}

#[cfg(test)]
mod graph_config_tests {
    use super::*;
    use em_core::EmConfig;

    #[test]
    fn overlapped_rounds_match_sync_results() {
        // The same BFS / CC answers must come out whether the rounds run
        // with synchronous or overlapped (multi-disk) I/O.
        let n = 1200u64;
        let sync_dev = EmConfig::new(256, 16).ram_disk();
        let g = gen::random_connected_graph(sync_dev.clone(), n, 2000, 31).unwrap();
        let sync_cfg = GraphConfig::sync(512).sort_config();
        let want_bfs = bfs_mr(&g, n, 0, &sync_cfg).unwrap().to_vec().unwrap();
        let want_cc = connected_components(&g, n, &sync_cfg)
            .unwrap()
            .to_vec()
            .unwrap();

        let dev =
            pdm::DiskArray::new_ram_with(4, 256, pdm::Placement::Striped, pdm::IoMode::Overlapped)
                as pdm::SharedDevice;
        let g2 = gen::random_connected_graph(dev, n, 2000, 31).unwrap();
        let over_cfg = GraphConfig::overlapped(512, 2).sort_config();
        assert_eq!(
            bfs_mr(&g2, n, 0, &over_cfg).unwrap().to_vec().unwrap(),
            want_bfs
        );
        assert_eq!(
            connected_components(&g2, n, &over_cfg)
                .unwrap()
                .to_vec()
                .unwrap(),
            want_cc
        );
    }
}
