//! The Euler-tour technique for external-memory tree problems.
//!
//! A tree on `N` vertices becomes a linked list of its `2(N−1)` arcs: the
//! successor of arc `(u, v)` is the arc after `(v, u)` in `v`'s circular
//! adjacency order.  That list is exactly an Euler tour of the tree, and
//! tree statistics reduce to list ranking over it:
//!
//! * depth: weight forward arcs `+1` and back arcs `−1`; the weighted rank
//!   at the forward arc into `v` is `depth(v) − 1`.
//! * subtree size, pre/post-order numbers, … follow the same pattern.
//!
//! All construction steps are sorts and scans — `O(Sort(N))` I/Os total —
//! which is the whole point: no per-edge pointer chasing.

use em_core::{ExtVec, ExtVecWriter};
use emsort::{merge_sort_by, merge_sort_streaming, SortConfig};
use pdm::Result;

use crate::list_ranking::{list_rank, list_rank_weighted, NIL};

/// An Euler tour of a tree, as a linked list of arcs.
pub struct EulerTour {
    /// All `2(N−1)` arcs, sorted by `(src, dst)`; the arc's id is its index.
    pub arcs: ExtVec<(u64, u64)>,
    /// `(arc_id, successor_arc_id)` sorted by arc id; the final arc of the
    /// tour has successor [`NIL`].
    pub succ: ExtVec<(u64, u64)>,
    /// Arc id where the tour starts (the root's first out-arc).
    pub head: u64,
}

impl EulerTour {
    /// Release all external storage.
    pub fn free(self) -> Result<()> {
        self.arcs.free()?;
        self.succ.free()
    }
}

/// Build the Euler tour of the tree given by undirected `edges`, rooted at
/// `root`.  `O(Sort(N))` I/Os.
pub fn euler_tour(edges: &ExtVec<(u64, u64)>, root: u64, cfg: &SortConfig) -> Result<EulerTour> {
    let device = edges.device().clone();
    assert!(!edges.is_empty(), "tree must have at least one edge");

    // 1. Symmetrize and sort: arcs ordered by (src, dst); id = position.
    let arcs = {
        let mut w: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device.clone());
        let mut r = edges.reader();
        while let Some((u, v)) = r.try_next()? {
            assert_ne!(u, v, "self loop in tree");
            w.push((u, v))?;
            w.push((v, u))?;
        }
        let unsorted = w.finish()?;
        let sorted = merge_sort_by(&unsorted, cfg, |a, b| a < b)?;
        unsorted.free()?;
        sorted
    };

    // 2. Per source group, link the circular order: the successor of arc
    //    (x_i, v) is v's next out-arc after (v, x_i).  Emit keyed by the
    //    *predecessor twin* (x_i, v): records (x_i, v, succ_arc_id).
    //    Also note the root's first out-arc (the tour head).
    let mut head: Option<u64> = None;
    let rel = {
        let mut w: ExtVecWriter<(u64, u64, u64)> = ExtVecWriter::new(device.clone());
        let mut r = arcs.reader();
        let mut idx = 0u64;
        let mut group: Option<(u64, u64, u64)> = None; // (src, first_arc_id, prev_dst)
        while let Some((src, dst)) = r.try_next()? {
            match &mut group {
                Some((gsrc, _first_id, prev_dst)) if *gsrc == src => {
                    // The arc after (src, prev_dst) in src's circular order
                    // is this one, so it is the tour successor of the twin
                    // arc (prev_dst, src).
                    w.push((*prev_dst, src, idx))?;
                    *prev_dst = dst;
                }
                _ => {
                    if let Some((gsrc, first_id, prev_dst)) = group {
                        // Close the previous group's circle.
                        w.push((prev_dst, gsrc, first_id))?;
                    }
                    if src == root && head.is_none() {
                        head = Some(idx);
                    }
                    group = Some((src, idx, dst));
                }
            }
            idx += 1;
        }
        if let Some((gsrc, first_id, prev_dst)) = group {
            w.push((prev_dst, gsrc, first_id))?;
        }
        w.finish()?
    };
    let head = head.expect("root has no incident edge");

    // 3. Zip: `rel` sorted by (x, v) runs parallel to `arcs` sorted by
    //    (src, dst); position i in `arcs` is arc id i.  Break the cycle at
    //    the arc whose successor is the head.  The sorted relation is
    //    consumed once, so the sort's final merge streams into the zip.
    let succ = merge_sort_streaming(
        &rel,
        cfg,
        |a, b| (a.0, a.1) < (b.0, b.1),
        |rr| {
            let mut w: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device.clone());
            let mut ra = arcs.reader();
            let mut idx = 0u64;
            while let Some((src, dst)) = ra.try_next()? {
                let (x, v, next) = rr.try_next()?.expect("one relation record per arc");
                debug_assert_eq!((x, v), (src, dst), "relation misaligned with arcs");
                w.push((idx, if next == head { NIL } else { next }))?;
                idx += 1;
            }
            w.finish()
        },
    )?;
    rel.free()?;

    Ok(EulerTour { arcs, succ, head })
}

/// Depth of every vertex of the tree `edges` rooted at `root`, via Euler
/// tour + weighted list ranking: `O(Sort(N))` I/Os.  Returns
/// `(vertex, depth)` sorted by vertex id, with `depth(root) = 0`.
pub fn tree_depths(
    edges: &ExtVec<(u64, u64)>,
    root: u64,
    cfg: &SortConfig,
) -> Result<ExtVec<(u64, u64)>> {
    let device = edges.device().clone();
    if edges.is_empty() {
        return ExtVec::from_slice(device, &[(root, 0u64)]);
    }
    let tour = euler_tour(edges, root, cfg)?;

    // Unit ranks order the arcs along the tour.
    let unit_ranks = list_rank(&tour.succ, tour.head, cfg)?; // (arc_id, position), sorted by arc id

    // Pair twin arcs by normalized endpoints to classify direction:
    // records (min, max, dst, arc_id, position), sorted by (min, max).
    let tagged = {
        let mut w: ExtVecWriter<(u64, u64, u64, u64)> = ExtVecWriter::new(device.clone());
        // arcs and unit_ranks are both in arc-id order; zip them.
        let mut ra = tour.arcs.reader();
        let mut rr = unit_ranks.reader();
        let mut idx = 0u64;
        while let Some((u, v)) = ra.try_next()? {
            let (aid, pos) = rr.try_next()?.expect("rank for every arc");
            debug_assert_eq!(aid, idx);
            let (lo, hi) = (u.min(v), u.max(v));
            w.push((lo, hi, pos, idx))?;
            idx += 1;
        }
        w.finish()?
    };
    unit_ranks.free()?;

    // Each consecutive pair in sorted `tagged` shares (lo, hi): the arc with
    // the smaller position is the forward (descending) arc.  Emit per-arc
    // weights and remember the forward arc's destination vertex.  The sorted
    // pairs are consumed once, so the final merge streams into the scan.
    let mut weights_w: ExtVecWriter<(u64, i64)> = ExtVecWriter::new(device.clone()); // (arc_id, ±1)
    let mut fwd_w: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device.clone()); // (forward_arc_id, child vertex)
    let tagged_less =
        |a: &(u64, u64, u64, u64), b: &(u64, u64, u64, u64)| (a.0, a.1, a.2) < (b.0, b.1, b.2);
    merge_sort_streaming(&tagged, cfg, tagged_less, |rt| {
        while let Some(first) = rt.try_next()? {
            let second = rt.try_next()?.expect("arcs come in twin pairs");
            debug_assert_eq!(
                (first.0, first.1),
                (second.0, second.1),
                "twin pairing broken"
            );
            // first.2 < second.2 (sorted by position): first is forward.
            let fwd_arc = first.3;
            let back_arc = second.3;
            weights_w.push((fwd_arc, 1))?;
            weights_w.push((back_arc, -1))?;
            // The forward arc descends from parent to child; we need its
            // dst.  Recover it: the forward arc is (parent, child) and the
            // twin (child, parent); the shared endpoints are {lo, hi}.  The
            // child is the dst of the forward arc — we did not store dst,
            // but arcs are sorted by (src, dst) and arc ids are positions,
            // so we can join against `arcs` afterwards instead.
            fwd_w.push((fwd_arc, 0))?;
        }
        Ok(())
    })?;
    tagged.free()?;
    let weights = weights_w.finish()?;
    let fwd = fwd_w.finish()?;

    // Weighted list over arcs: (arc_id, succ, weight).  Sorted weights are
    // consumed once by the zip, so the final merge streams into it.
    let nodes = merge_sort_streaming(
        &weights,
        cfg,
        |a, b| a.0 < b.0,
        |rw| {
            let mut w: ExtVecWriter<(u64, u64, i64)> = ExtVecWriter::new(device.clone());
            let mut rs = tour.succ.reader();
            while let Some((aid, s)) = rs.try_next()? {
                let (wid, weight) = rw.try_next()?.expect("weight for every arc");
                debug_assert_eq!(wid, aid);
                w.push((aid, s, weight))?;
            }
            w.finish()
        },
    )?;
    weights.free()?;
    let wranks = list_rank_weighted(&nodes, tour.head, cfg)?; // (arc_id, weighted rank)
    nodes.free()?;

    // depth(child of forward arc a) = wrank(a) + 1.  Join forward arcs with
    // their dst (via `arcs`, arc-id order) and with wranks (arc-id order);
    // the sorted forward-arc list is consumed once, so it streams too.
    let mut depths_w: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device.clone());
    depths_w.push((root, 0))?;
    merge_sort_streaming(
        &fwd,
        cfg,
        |a, b| a.0 < b.0,
        |rf| {
            let mut ra = tour.arcs.reader();
            let mut rr = wranks.reader();
            let mut cur_fwd: Option<(u64, u64)> = rf.try_next()?;
            let mut idx = 0u64;
            while let Some((_src, dst)) = ra.try_next()? {
                let (aid, wrank) = rr.try_next()?.expect("rank for every arc");
                debug_assert_eq!(aid, idx);
                if cur_fwd.is_some_and(|(f, _)| f == idx) {
                    depths_w.push((dst, (wrank + 1) as u64))?;
                    cur_fwd = rf.try_next()?;
                }
                idx += 1;
            }
            Ok(())
        },
    )?;
    wranks.free()?;
    fwd.free()?;
    tour.free()?;
    let unsorted = depths_w.finish()?;
    let sorted = merge_sort_by(&unsorted, cfg, |a, b| a.0 < b.0)?;
    unsorted.free()?;
    Ok(sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_tree;
    use em_core::EmConfig;
    use pdm::SharedDevice;

    fn device() -> SharedDevice {
        EmConfig::new(128, 8).ram_disk()
    }

    fn reference_depths(edges: &[(u64, u64)], root: u64, n: u64) -> Vec<(u64, u64)> {
        let mut adj = vec![Vec::new(); n as usize];
        for &(u, v) in edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        let mut depth = vec![u64::MAX; n as usize];
        depth[root as usize] = 0;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u as usize] {
                if depth[v as usize] == u64::MAX {
                    depth[v as usize] = depth[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
        (0..n).map(|v| (v, depth[v as usize])).collect()
    }

    #[test]
    fn tour_visits_every_arc_once() {
        let d = device();
        let edges = random_tree(d.clone(), 50, 91).unwrap();
        let tour = euler_tour(&edges, 0, &SortConfig::new(128)).unwrap();
        assert_eq!(tour.arcs.len(), 2 * 49);
        let succ: std::collections::HashMap<u64, u64> =
            tour.succ.to_vec().unwrap().into_iter().collect();
        let mut cur = tour.head;
        let mut visited = std::collections::HashSet::new();
        while cur != NIL {
            assert!(visited.insert(cur), "arc visited twice");
            cur = succ[&cur];
        }
        assert_eq!(visited.len() as u64, tour.arcs.len(), "tour misses arcs");
    }

    #[test]
    fn tour_is_contiguous_walk() {
        // Each consecutive pair of arcs must share the middle vertex.
        let d = device();
        let edges = random_tree(d.clone(), 30, 92).unwrap();
        let tour = euler_tour(&edges, 0, &SortConfig::new(128)).unwrap();
        let arcs = tour.arcs.to_vec().unwrap();
        let succ: std::collections::HashMap<u64, u64> =
            tour.succ.to_vec().unwrap().into_iter().collect();
        let mut cur = tour.head;
        assert_eq!(arcs[cur as usize].0, 0, "tour starts at the root");
        while succ[&cur] != NIL {
            let nxt = succ[&cur];
            assert_eq!(arcs[cur as usize].1, arcs[nxt as usize].0, "walk breaks");
            cur = nxt;
        }
        assert_eq!(arcs[cur as usize].1, 0, "tour ends back at the root");
    }

    #[test]
    fn depths_path_graph() {
        let d = device();
        let edges: Vec<(u64, u64)> = (0..9u64).map(|i| (i, i + 1)).collect();
        let ev = ExtVec::from_slice(d, &edges).unwrap();
        let depths = tree_depths(&ev, 0, &SortConfig::new(128)).unwrap();
        assert_eq!(
            depths.to_vec().unwrap(),
            (0..10u64).map(|v| (v, v)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn depths_star_graph() {
        let d = device();
        let edges: Vec<(u64, u64)> = (1..20u64).map(|i| (0, i)).collect();
        let ev = ExtVec::from_slice(d, &edges).unwrap();
        let depths = tree_depths(&ev, 0, &SortConfig::new(128)).unwrap();
        let got = depths.to_vec().unwrap();
        assert_eq!(got[0], (0, 0));
        assert!(got[1..].iter().all(|&(_, dep)| dep == 1));
    }

    #[test]
    fn depths_random_trees_match_bfs() {
        let d = device();
        for (n, seed) in [(100u64, 93u64), (1000, 94), (2500, 95)] {
            let edges = random_tree(d.clone(), n, seed).unwrap();
            let depths = tree_depths(&edges, 0, &SortConfig::new(200)).unwrap();
            assert_eq!(
                depths.to_vec().unwrap(),
                reference_depths(&edges.to_vec().unwrap(), 0, n),
                "n={n}"
            );
        }
    }

    #[test]
    fn depths_with_nonzero_root() {
        let d = device();
        let edges = ExtVec::from_slice(d, &[(0u64, 1u64), (1, 2), (2, 3)]).unwrap();
        let depths = tree_depths(&edges, 2, &SortConfig::new(128)).unwrap();
        assert_eq!(
            depths.to_vec().unwrap(),
            vec![(0, 2), (1, 1), (2, 0), (3, 1)]
        );
    }

    #[test]
    fn single_edge_tree() {
        let d = device();
        let edges = ExtVec::from_slice(d, &[(0u64, 1u64)]).unwrap();
        let depths = tree_depths(&edges, 0, &SortConfig::new(128)).unwrap();
        assert_eq!(depths.to_vec().unwrap(), vec![(0, 0), (1, 1)]);
    }
}
