//! Deterministic workload generators for lists, trees and graphs.
//!
//! Everything is seeded, so tests and experiments are reproducible.  All
//! generators return external arrays on the caller's device.

use em_core::{ExtVec, ExtVecWriter};
use pdm::{Result, SharedDevice};
use rand::prelude::*;

/// A random singly-linked list over nodes `0..n` as `(node, successor)`
/// pairs sorted by node id; returns `(pairs, head)`.  The tail's successor
/// is `u64::MAX`.
pub fn random_list(device: SharedDevice, n: u64, seed: u64) -> Result<(ExtVec<(u64, u64)>, u64)> {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    // Random order of the node ids = positions along the list.
    let mut order: Vec<u64> = (0..n).collect();
    order.shuffle(&mut rng);
    let head = order[0];
    let mut succ: Vec<(u64, u64)> = (0..n).map(|i| (i, u64::MAX)).collect();
    for w in order.windows(2) {
        succ[w[0] as usize].1 = w[1];
    }
    let v = ExtVec::from_slice(device, &succ)?;
    Ok((v, head))
}

/// A uniformly random rooted tree on vertices `0..n` (root 0), returned as
/// undirected edges `(parent, child)`.  Every vertex `v > 0` picks a random
/// parent among `0..v`.
pub fn random_tree(device: SharedDevice, n: u64, seed: u64) -> Result<ExtVec<(u64, u64)>> {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = ExtVecWriter::new(device);
    for v in 1..n {
        let p = rng.gen_range(0..v);
        w.push((p, v))?;
    }
    w.finish()
}

/// A random sparse undirected graph on `n` vertices with ~`avg_degree·n/2`
/// distinct edges (no loops, no duplicates), as `(u, v)` with `u < v`.
pub fn random_graph(
    device: SharedDevice,
    n: u64,
    avg_degree: f64,
    seed: u64,
) -> Result<ExtVec<(u64, u64)>> {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let target = ((n as f64 * avg_degree) / 2.0) as usize;
    let mut edges = std::collections::BTreeSet::new();
    while edges.len() < target {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            edges.insert((a.min(b), a.max(b)));
        }
    }
    let flat: Vec<(u64, u64)> = edges.into_iter().collect();
    ExtVec::from_slice(device, &flat)
}

/// A connected random graph: a random tree plus extra random edges.
pub fn random_connected_graph(
    device: SharedDevice,
    n: u64,
    extra_edges: u64,
    seed: u64,
) -> Result<ExtVec<(u64, u64)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = std::collections::BTreeSet::new();
    for v in 1..n {
        let p = rng.gen_range(0..v);
        edges.insert((p.min(v), p.max(v)));
    }
    let mut added = 0;
    while added < extra_edges {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && edges.insert((a.min(b), a.max(b))) {
            added += 1;
        }
    }
    let flat: Vec<(u64, u64)> = edges.into_iter().collect();
    ExtVec::from_slice(device, &flat)
}

/// A `w × h` grid graph (the road-network-like workload): vertex
/// `(x, y) = y·w + x`, edges to the right and downward neighbours.
pub fn grid_graph(device: SharedDevice, w: u64, h: u64) -> Result<ExtVec<(u64, u64)>> {
    let mut out = ExtVecWriter::new(device);
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            if x + 1 < w {
                out.push((v, v + 1))?;
            }
            if y + 1 < h {
                out.push((v, v + w))?;
            }
        }
    }
    out.finish()
}

/// A graph made of `k` disjoint random connected components of `n_each`
/// vertices; returns the edge list and the expected component id of each
/// vertex (`vertex / n_each`).
pub fn planted_components(
    device: SharedDevice,
    k: u64,
    n_each: u64,
    seed: u64,
) -> Result<ExtVec<(u64, u64)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = ExtVecWriter::new(device);
    for c in 0..k {
        let base = c * n_each;
        for v in 1..n_each {
            let p = rng.gen_range(0..v);
            w.push((base + p, base + v))?;
        }
        // A few extra intra-component edges.
        for _ in 0..n_each / 4 {
            let a = rng.gen_range(0..n_each);
            let b = rng.gen_range(0..n_each);
            if a != b {
                w.push((base + a.min(b), base + a.max(b)))?;
            }
        }
    }
    w.finish()
}

/// A random DAG on topologically-numbered vertices `0..n`: each vertex
/// `v ≥ 1` receives `deg_in` edges from uniformly random earlier vertices
/// (duplicates removed).  Returned sorted by `(src, dst)`.
pub fn random_dag(
    device: SharedDevice,
    n: u64,
    deg_in: u64,
    seed: u64,
) -> Result<ExtVec<(u64, u64)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = std::collections::BTreeSet::new();
    for v in 1..n {
        for _ in 0..deg_in {
            let u = rng.gen_range(0..v);
            edges.insert((u, v));
        }
    }
    let flat: Vec<(u64, u64)> = edges.into_iter().collect();
    ExtVec::from_slice(device, &flat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::EmConfig;

    fn device() -> SharedDevice {
        EmConfig::new(128, 8).ram_disk()
    }

    #[test]
    fn random_list_is_a_permutation_chain() {
        let (list, head) = random_list(device(), 500, 7).unwrap();
        let pairs = list.to_vec().unwrap();
        assert_eq!(pairs.len(), 500);
        // Follow the chain; must visit every node exactly once.
        let succ: Vec<u64> = pairs.iter().map(|p| p.1).collect();
        let mut seen = vec![false; 500];
        let mut cur = head;
        for _ in 0..500 {
            assert!(!seen[cur as usize]);
            seen[cur as usize] = true;
            cur = succ[cur as usize];
        }
        assert_eq!(cur, u64::MAX);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_tree_has_n_minus_one_edges() {
        let t = random_tree(device(), 100, 9).unwrap();
        let edges = t.to_vec().unwrap();
        assert_eq!(edges.len(), 99);
        for (p, c) in edges {
            assert!(p < c, "parent is earlier than child by construction");
        }
    }

    #[test]
    fn grid_graph_edge_count() {
        let g = grid_graph(device(), 4, 3).unwrap();
        // 3 rows × 3 horizontal + 4 cols × 2 vertical = 9 + 8
        assert_eq!(g.len(), 17);
    }

    #[test]
    fn random_graph_no_dupes_or_loops() {
        let g = random_graph(device(), 50, 4.0, 11).unwrap();
        let edges = g.to_vec().unwrap();
        let set: std::collections::BTreeSet<_> = edges.iter().collect();
        assert_eq!(set.len(), edges.len());
        assert!(edges.iter().all(|(a, b)| a < b));
    }

    #[test]
    fn random_dag_edges_point_forward() {
        let g = random_dag(device(), 200, 3, 13).unwrap();
        assert!(g.to_vec().unwrap().iter().all(|(u, v)| u < v));
    }
}
