//! External breadth-first search.
//!
//! [`bfs_mr`] is the Munagala–Ranade algorithm: the classic observation that
//! the neighbours of level `L(t)` minus `L(t) ∪ L(t−1)` are exactly
//! `L(t+1)`, so levels can be built by *sorting and set-subtraction* instead
//! of a visited-bit lookup per edge:
//!
//! ```text
//! I/Os = O(V + Sort(E))
//! ```
//!
//! (the `V` term pays one random access per vertex to fetch its adjacency
//! list).  [`bfs_naive`] is the baseline the survey contrasts it with: an
//! internal-memory BFS run over unclustered external adjacency data, paying
//! `Θ(1)` I/Os per *edge* (experiment F10).

use em_core::{ExtVec, ExtVecWriter};
use emsort::{merge_sort_by, SortConfig, SortingWriter};
use pdm::Result;

/// Munagala–Ranade BFS over the undirected graph `edges` (vertex ids dense
/// in `0..n`).  Returns `(vertex, distance)` for every vertex reachable from
/// `source`, sorted by vertex id.
pub fn bfs_mr(
    edges: &ExtVec<(u64, u64)>,
    n: u64,
    source: u64,
    cfg: &SortConfig,
) -> Result<ExtVec<(u64, u64)>> {
    assert!(source < n);
    let device = edges.device().clone();

    // Preprocess: clustered adjacency (arcs sorted by (src, dst)) plus a
    // dense offset table (start, degree) indexed by vertex.  The symmetrized
    // arcs feed the sort directly — no unsorted materialization.
    let adj = {
        let mut w: SortingWriter<(u64, u64), _> =
            SortingWriter::new(device.clone(), cfg, |a, b| a < b);
        let mut r = edges.reader();
        while let Some((u, v)) = r.try_next()? {
            assert!(u < n && v < n, "vertex id out of range");
            w.push((u, v))?;
            w.push((v, u))?;
        }
        w.finish_sorted()?
    };
    let offsets: ExtVec<(u64, u64)> = {
        // (start, degree) for vertex v at index v.
        let mut w: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device.clone());
        let mut r = adj.reader();
        let mut pos = 0u64;
        let mut next_vertex = 0u64;
        let mut cur: Option<(u64, u64)> = None; // (vertex, start)
        while let Some((src, _)) = r.try_next()? {
            match &cur {
                Some((v, _)) if *v == src => {}
                _ => {
                    if let Some((v, start)) = cur {
                        while next_vertex < v {
                            w.push((0, 0))?;
                            next_vertex += 1;
                        }
                        w.push((start, pos - start))?;
                        next_vertex += 1;
                    }
                    cur = Some((src, pos));
                }
            }
            pos += 1;
        }
        if let Some((v, start)) = cur {
            while next_vertex < v {
                w.push((0, 0))?;
                next_vertex += 1;
            }
            w.push((start, pos - start))?;
            next_vertex += 1;
        }
        while next_vertex < n {
            w.push((0, 0))?;
            next_vertex += 1;
        }
        w.finish()?
    };

    // Levels append in discovery order; the sink sorts them by vertex id
    // without ever materializing the unsorted sequence.
    let mut out: SortingWriter<(u64, u64), _> =
        SortingWriter::new(device.clone(), cfg, |a: &(u64, u64), b| a.0 < b.0);
    out.push((source, 0))?;

    let mut prev: ExtVec<u64> = ExtVec::new(device.clone()); // L(t−1)
    let mut cur: ExtVec<u64> = ExtVec::from_slice(device.clone(), &[source])?; // L(t)
    let mut dist = 0u64;
    let mut nbr_buf: Vec<(u64, u64)> = Vec::new();

    while !cur.is_empty() {
        // Gather neighbours of the frontier straight into a sorting sink:
        // runs form as the gather produces, so the unsorted neighbour list
        // is never written out or re-read.
        let mut nbrs_w: SortingWriter<u64, _> =
            SortingWriter::new(device.clone(), cfg, |a, b| a < b);
        {
            let mut rc = cur.reader();
            while let Some(v) = rc.try_next()? {
                let (start, deg) = offsets.get(v)?; // one random I/O per frontier vertex
                if deg > 0 {
                    adj.read_range(start, deg as usize, &mut nbr_buf)?;
                    for (_, dst) in nbr_buf.drain(..) {
                        nbrs_w.push(dst)?;
                    }
                }
            }
        }

        // next = dedup(sort(nbrs)) − cur − prev (all three sorted).  The
        // sorted neighbour list is consumed in exactly one pass, so the
        // final merge streams straight into the set subtraction.
        let mut next_w: ExtVecWriter<u64> = ExtVecWriter::new(device.clone());
        nbrs_w.finish_streaming(|rn| {
            let mut rc = cur.reader();
            let mut rp = prev.reader();
            let mut cur_c: Option<u64> = rc.try_next()?;
            let mut cur_p: Option<u64> = rp.try_next()?;
            let mut last: Option<u64> = None;
            while let Some(x) = rn.try_next()? {
                if last == Some(x) {
                    continue; // dedup
                }
                last = Some(x);
                while cur_c.is_some_and(|c| c < x) {
                    cur_c = rc.try_next()?;
                }
                while cur_p.is_some_and(|p| p < x) {
                    cur_p = rp.try_next()?;
                }
                if cur_c != Some(x) && cur_p != Some(x) {
                    next_w.push(x)?;
                }
            }
            Ok(())
        })?;
        let next = next_w.finish()?;

        dist += 1;
        {
            let mut r = next.reader();
            while let Some(v) = r.try_next()? {
                out.push((v, dist))?;
            }
        }
        prev.free()?;
        prev = cur;
        cur = next;
    }
    prev.free()?;
    cur.free()?;
    adj.free()?;
    offsets.free()?;

    out.finish_sorted()
}

/// Baseline: internal-memory BFS over *unclustered* external adjacency — the
/// edge endpoints of each vertex are fetched with one random I/O apiece, so
/// the total cost is `Θ(E)` I/Os.  (The visited set and queue are held in
/// memory, which only helps the baseline.)  Returns `(vertex, distance)`
/// sorted by vertex id.
pub fn bfs_naive(
    edges: &ExtVec<(u64, u64)>,
    n: u64,
    source: u64,
    cfg: &SortConfig,
) -> Result<ExtVec<(u64, u64)>> {
    assert!(source < n);
    // In-memory index of *positions* into the unclustered edge array.
    let mut incidence: Vec<Vec<u64>> = vec![Vec::new(); n as usize];
    {
        let mut r = edges.reader();
        let mut i = 0u64;
        while let Some((u, v)) = r.try_next()? {
            incidence[u as usize].push(i);
            incidence[v as usize].push(i);
            i += 1;
        }
    }
    let mut dist = vec![u64::MAX; n as usize];
    dist[source as usize] = 0;
    let mut queue = std::collections::VecDeque::from([source]);
    let mut out: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(edges.device().clone());
    while let Some(u) = queue.pop_front() {
        out.push((u, dist[u as usize]))?;
        for &pos in &incidence[u as usize] {
            let (a, b) = edges.get(pos)?; // one random I/O per incident edge
            let w = if a == u { b } else { a };
            if dist[w as usize] == u64::MAX {
                dist[w as usize] = dist[u as usize] + 1;
                queue.push_back(w);
            }
        }
    }
    let unsorted = out.finish()?;
    let sorted = merge_sort_by(&unsorted, cfg, |a, b| a.0 < b.0)?;
    unsorted.free()?;
    Ok(sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{grid_graph, random_connected_graph, random_graph};
    use em_core::EmConfig;
    use pdm::SharedDevice;

    fn device() -> SharedDevice {
        EmConfig::new(128, 16).ram_disk()
    }

    fn reference_bfs(edges: &[(u64, u64)], n: u64, source: u64) -> Vec<(u64, u64)> {
        let mut adj = vec![Vec::new(); n as usize];
        for &(u, v) in edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        let mut dist = vec![u64::MAX; n as usize];
        dist[source as usize] = 0;
        let mut q = std::collections::VecDeque::from([source]);
        while let Some(u) = q.pop_front() {
            for &v in &adj[u as usize] {
                if dist[v as usize] == u64::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        (0..n)
            .filter(|&v| dist[v as usize] != u64::MAX)
            .map(|v| (v, dist[v as usize]))
            .collect()
    }

    #[test]
    fn grid_distances() {
        let d = device();
        let (w, h) = (12u64, 9u64);
        let g = grid_graph(d.clone(), w, h).unwrap();
        let got = bfs_mr(&g, w * h, 0, &SortConfig::new(256)).unwrap();
        // Manhattan distance from the corner.
        let expect: Vec<(u64, u64)> = (0..w * h).map(|v| (v, v % w + v / w)).collect();
        assert_eq!(got.to_vec().unwrap(), expect);
    }

    #[test]
    fn random_connected_matches_reference() {
        let d = device();
        let n = 1500u64;
        let g = random_connected_graph(d.clone(), n, 2000, 111).unwrap();
        let got = bfs_mr(&g, n, 3, &SortConfig::new(256)).unwrap();
        assert_eq!(
            got.to_vec().unwrap(),
            reference_bfs(&g.to_vec().unwrap(), n, 3)
        );
    }

    #[test]
    fn disconnected_graph_reports_only_reachable() {
        let d = device();
        // Two components: 0-1-2 and 3-4.
        let g = ExtVec::from_slice(d, &[(0u64, 1u64), (1, 2), (3, 4)]).unwrap();
        let got = bfs_mr(&g, 5, 0, &SortConfig::new(128)).unwrap();
        assert_eq!(got.to_vec().unwrap(), vec![(0, 0), (1, 1), (2, 2)]);
        let got4 = bfs_mr(&g, 5, 4, &SortConfig::new(128)).unwrap();
        assert_eq!(got4.to_vec().unwrap(), vec![(3, 1), (4, 0)]);
    }

    #[test]
    fn naive_matches_mr() {
        let d = device();
        let n = 600u64;
        let g = random_graph(d.clone(), n, 4.0, 113).unwrap();
        let cfg = SortConfig::new(256);
        let a = bfs_mr(&g, n, 0, &cfg).unwrap().to_vec().unwrap();
        let b = bfs_naive(&g, n, 0, &cfg).unwrap().to_vec().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mr_beats_naive_on_io() {
        // Realistic block size (B = 256 pairs): with tiny blocks the sort
        // constants dominate and per-edge I/O wins — the survey's crossover.
        let d = EmConfig::new(4096, 16).ram_disk();
        let n = 4000u64;
        let g = random_connected_graph(d.clone(), n, 12_000, 115).unwrap();
        let cfg = SortConfig::new(8192);
        let e = g.len();

        let before = d.stats().snapshot();
        bfs_naive(&g, n, 0, &cfg).unwrap();
        let naive = d.stats().snapshot().since(&before).total();

        let before = d.stats().snapshot();
        bfs_mr(&g, n, 0, &cfg).unwrap();
        let mr = d.stats().snapshot().since(&before).total();

        assert!(
            naive as f64 >= 1.5 * e as f64,
            "naive pays per edge: {naive} for {e} edges"
        );
        assert!(mr < naive, "MR ({mr}) should beat per-edge I/O ({naive})");
    }

    #[test]
    fn single_vertex_graph() {
        let d = device();
        let g: ExtVec<(u64, u64)> = ExtVec::new(d);
        let got = bfs_mr(&g, 1, 0, &SortConfig::new(128)).unwrap();
        assert_eq!(got.to_vec().unwrap(), vec![(0, 0)]);
    }

    #[test]
    fn temporaries_freed() {
        let d = device();
        let g = random_connected_graph(d.clone(), 800, 800, 117).unwrap();
        let before = d.allocated_blocks();
        let got = bfs_mr(&g, 800, 0, &SortConfig::new(256)).unwrap();
        assert_eq!(d.allocated_blocks(), before + got.num_blocks() as u64);
    }
}
