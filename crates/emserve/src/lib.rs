//! # `emserve` — a sharded multi-tenant KV serving layer
//!
//! The survey's headline amortized bound — buffer-tree updates at
//! `O((1/B)·log_{M/B}(N/B))` I/Os per operation versus `Θ(log_B N)` for a
//! naive B-tree — only pays off if a serving layer actually *absorbs* point
//! operations into batches.  This crate is that layer: it turns the
//! workspace's algorithmic structures into an online system.
//!
//! Three pieces:
//!
//! * [`Shard`] — one partition of the dictionary: an [`emtree::BTree`]
//!   (authoritative, point-read path through a [`pdm::BufferPool`]) paired
//!   with an [`emtree::BufferTree`] write absorber and an in-memory delta
//!   map mirroring every op absorbed since the last compaction.  Writes cost
//!   the buffer tree's amortized `O((1/B)·log_{M/B})`; a periodic compaction
//!   drains the absorber in key order into
//!   [`BTree::apply_sorted_batch`](emtree::BTree::apply_sorted_batch) — one
//!   streaming `O((N+Δ)/B)` rebuild — so reads never pay a flush.
//! * [`Server`] — the concurrent request batcher: one bounded MPSC ingest
//!   queue and drain thread per shard.  The drain thread coalesces
//!   puts/deletes into batches flushed on *size or deadline* (throughput
//!   batching never unbounded-delays an ack), serves gets read-your-writes
//!   consistently by consulting the in-flight delta before the tree, and
//!   acknowledges a write only after the absorber holds it.  Shards are
//!   pinned to distinct lanes of an independent-disk array via
//!   [`pdm::LaneView`], so one shard's flush never serializes a neighbour's
//!   reads, and per-shard transfers are attributable per lane through
//!   [`pdm::IoStats::snapshot_delta`].
//! * [`HotCache`] — the per-tenant hot-key read path: a record-budgeted LRU
//!   in front of each shard whose admission control is a shared per-tenant
//!   [`em_core::MemBudget`], so one tenant's scan cannot evict another
//!   tenant's working set.
//!
//! Determinism: shard routing is a seeded FNV-1a over the encoded
//! `(tenant, key)` record, every queue drain is FIFO per shard, and all
//! storage sits on the deterministic `pdm` substrate — a fixed request tape
//! produces a fixed final state (asserted by `tests/serve_consistency.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod server;
mod shard;
mod stats;

pub use cache::HotCache;
pub use server::{CompletionSink, NullSink, ReqKind, Request, ServeConfig, Server};
pub use shard::{shard_of_key, Shard};
pub use stats::ServeStats;
