//! Serving-layer counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared serving counters, aggregated across every shard worker of a
/// [`Server`](crate::Server).
///
/// All counters are monotone; capture before/after values and subtract to
/// attribute activity to a measurement window (the same discipline as
/// [`pdm::IoStats::snapshot_delta`]).
#[derive(Debug, Default)]
pub struct ServeStats {
    puts: AtomicU64,
    deletes: AtomicU64,
    gets: AtomicU64,
    /// Writes acknowledged to their [`CompletionSink`](crate::CompletionSink).
    acked_writes: AtomicU64,
    /// Write batches flushed into the absorbers (size- or deadline-trigger).
    batches: AtomicU64,
    /// Individual ops carried by those batches.
    batched_ops: AtomicU64,
    /// Absorber → B+-tree compactions.
    compactions: AtomicU64,
    /// Gets answered by a [`HotCache`](crate::HotCache).
    cache_hits: AtomicU64,
    /// Gets that had to consult the delta map or the tree.
    cache_misses: AtomicU64,
    /// Cache admissions denied because the tenant's budget was exhausted
    /// and the local shard held nothing evictable.
    cache_rejected: AtomicU64,
}

macro_rules! counter {
    ($(#[$doc:meta])* $record:ident, $get:ident) => {
        $(#[$doc])*
        #[inline]
        pub fn $record(&self) {
            self.$get.fetch_add(1, Ordering::Relaxed);
        }

        /// Current value of the counter of the same name.
        pub fn $get(&self) -> u64 {
            self.$get.load(Ordering::Relaxed)
        }
    };
}

impl ServeStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    counter!(
        /// Record one put accepted by a shard worker.
        record_put,
        puts
    );
    counter!(
        /// Record one delete accepted by a shard worker.
        record_delete,
        deletes
    );
    counter!(
        /// Record one get accepted by a shard worker.
        record_get,
        gets
    );
    counter!(
        /// Record one write acknowledgement.
        record_acked_write,
        acked_writes
    );
    counter!(
        /// Record one batch flush.
        record_batch,
        batches
    );
    counter!(
        /// Record one op absorbed as part of a batch.
        record_batched_op,
        batched_ops
    );
    counter!(
        /// Record one absorber→tree compaction.
        record_compaction,
        compactions
    );
    counter!(
        /// Record one hot-cache hit.
        record_cache_hit,
        cache_hits
    );
    counter!(
        /// Record one hot-cache miss.
        record_cache_miss,
        cache_misses
    );
    counter!(
        /// Record one denied cache admission.
        record_cache_rejected,
        cache_rejected
    );

    /// Hot-cache hit rate over all gets so far (0.0 when no gets).
    pub fn cache_hit_rate(&self) -> f64 {
        let h = self.cache_hits();
        let m = self.cache_misses();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Mean ops per flushed batch (0.0 when no batches).
    pub fn mean_batch_size(&self) -> f64 {
        let b = self.batches();
        if b == 0 {
            0.0
        } else {
            self.batched_ops() as f64 / b as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_derived_rates() {
        let s = ServeStats::new();
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert_eq!(s.mean_batch_size(), 0.0);
        s.record_put();
        s.record_put();
        s.record_delete();
        s.record_get();
        s.record_cache_hit();
        s.record_get();
        s.record_cache_miss();
        s.record_get();
        s.record_cache_miss();
        s.record_batch();
        s.record_batched_op();
        s.record_batched_op();
        s.record_batched_op();
        s.record_acked_write();
        s.record_compaction();
        s.record_cache_rejected();
        assert_eq!(s.puts(), 2);
        assert_eq!(s.deletes(), 1);
        assert_eq!(s.gets(), 3);
        assert_eq!(s.acked_writes(), 1);
        assert_eq!(s.compactions(), 1);
        assert_eq!(s.cache_rejected(), 1);
        assert!((s.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert!((s.mean_batch_size() - 3.0).abs() < 1e-9);
    }
}
