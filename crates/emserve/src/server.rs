//! The concurrent request batcher.
//!
//! One bounded MPSC ingest queue and one drain thread per shard.  Producers
//! route requests by deterministic hash ([`shard_of_key`]) and block when a
//! shard's queue is full (bounded memory, natural backpressure).  Each drain
//! thread coalesces puts/deletes into absorber batches flushed on *size or
//! deadline* — so a saturated shard amortizes absorber I/O over
//! `batch_max` ops, while a trickle still acks within `batch_deadline` —
//! and serves gets with read-your-writes consistency by consulting the
//! shard's delta overlay (which includes the open batch) before the tree.
//!
//! Durability contract: a write is acknowledged through the
//! [`CompletionSink`] only after the absorber holds it.  On a device error
//! the worker *fail-stops*: it records the first error, stops accepting
//! data operations (never acking anything it could not absorb), but keeps
//! answering control messages so producers and `barrier()` callers cannot
//! deadlock.  The error surfaces from the next control call.
//!
//! Shards are pinned to distinct lanes of an independent-placement
//! [`DiskArray`] via [`LaneView`], so per-shard transfer counts fall out of
//! [`IoStats::snapshot_delta`](pdm::IoStats::snapshot_delta) per lane, and
//! one shard's compaction never queues behind a neighbour's reads.

use std::hash::Hash;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use em_core::{MemBudget, Record};
use pdm::{BufferPool, DiskArray, LaneView, PdmError, Result};

use crate::cache::HotCache;
use crate::shard::{shard_of_key, Shard};
use crate::stats::ServeStats;

/// What a request asks of the dictionary.
#[derive(Debug, Clone)]
pub enum ReqKind<K, V> {
    /// Upsert `key -> value`.
    Put(K, V),
    /// Remove `key` if present.
    Delete(K),
    /// Point lookup.
    Get(K),
}

/// One client request, tagged with the tenant it belongs to and a caller
/// chosen `op_id` echoed back through the [`CompletionSink`].
#[derive(Debug, Clone)]
pub struct Request<K, V> {
    /// Tenant namespace (must be `< ServeConfig::tenants`).
    pub tenant: u32,
    /// Caller-chosen correlation id, echoed in completions.
    pub op_id: u64,
    /// The operation itself.
    pub kind: ReqKind<K, V>,
}

/// Where completions go.  Implementations must be cheap and non-blocking —
/// they run on shard drain threads.
pub trait CompletionSink<V>: Send + Sync + 'static {
    /// `op_id`'s write is durable in its shard's absorber.
    fn acked_write(&self, tenant: u32, op_id: u64);
    /// `op_id`'s get resolved to `value`.
    fn got(&self, tenant: u32, op_id: u64, value: Option<V>);
}

/// A sink that drops every completion (fire-and-forget workloads, tests
/// that only inspect final state).
pub struct NullSink;

impl<V> CompletionSink<V> for NullSink {
    fn acked_write(&self, _tenant: u32, _op_id: u64) {}
    fn got(&self, _tenant: u32, _op_id: u64, _value: Option<V>) {}
}

/// Serving-layer tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shards (drain threads, lanes when the array is independent).
    pub shards: usize,
    /// Number of tenant namespaces.
    pub tenants: usize,
    /// Bound of each shard's ingest queue (requests).
    pub queue_depth: usize,
    /// Flush the open batch once it holds this many writes.
    pub batch_max: usize,
    /// Flush the open batch once its first op has waited this long.
    pub batch_deadline: Duration,
    /// Compact a shard once its delta holds this many distinct keys.
    pub compact_threshold: usize,
    /// Frames in each shard's read buffer pool.
    pub pool_frames: usize,
    /// In-memory record budget of each shard's buffer-tree absorber.
    pub absorber_mem: usize,
    /// Per-tenant hot-cache budget (records, shared across shards).
    pub cache_records: usize,
    /// `true` = absorber batching; `false` = write-through to the B+-tree.
    pub batched: bool,
}

impl ServeConfig {
    /// Defaults sized for tests and small benches.
    pub fn new(shards: usize, tenants: usize) -> Self {
        ServeConfig {
            shards,
            tenants,
            queue_depth: 1024,
            batch_max: 256,
            batch_deadline: Duration::from_millis(2),
            compact_threshold: 8192,
            pool_frames: 64,
            absorber_mem: 4096,
            cache_records: 1024,
            batched: true,
        }
    }
}

enum Msg<K, V> {
    Req(Request<K, V>),
    /// Flush the open batch, then reply.  An error string is reported if the
    /// worker has fail-stopped.
    Barrier(SyncSender<Option<String>>),
    /// Flush and compact unconditionally, then reply.
    Compact(SyncSender<Option<String>>),
    /// Tenant-scoped range scan over this shard's keyspace slice.
    Range {
        tenant: u32,
        lo: K,
        hi: K,
        reply: SyncSender<std::result::Result<Vec<(K, V)>, String>>,
    },
    Shutdown,
}

/// The sharded, batched, multi-tenant serving front end.
pub struct Server<K: Record + Ord + Eq + Hash, V: Record> {
    cfg: ServeConfig,
    stats: Arc<ServeStats>,
    senders: Vec<SyncSender<Msg<K, V>>>,
    workers: Vec<JoinHandle<()>>,
    pools: Vec<Arc<BufferPool>>,
    first_error: Arc<Mutex<Option<String>>>,
}

impl<K, V> Server<K, V>
where
    K: Record + Ord + Eq + Hash,
    V: Record,
{
    /// Spin up `cfg.shards` drain threads over `array`.
    ///
    /// When the array uses independent placement, shard `s` is pinned to
    /// lane `s % D` through [`LaneView`]; striped arrays pass through
    /// unchanged (every shard shares the stripe).
    pub fn new(
        array: Arc<DiskArray>,
        cfg: ServeConfig,
        sink: Arc<dyn CompletionSink<V>>,
    ) -> Result<Self> {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.tenants > 0, "need at least one tenant");
        let stats = Arc::new(ServeStats::new());
        let first_error = Arc::new(Mutex::new(None));
        let budgets: Vec<Arc<MemBudget>> = (0..cfg.tenants)
            .map(|_| MemBudget::new(cfg.cache_records.max(1)))
            .collect();
        let mut senders = Vec::with_capacity(cfg.shards);
        let mut workers = Vec::with_capacity(cfg.shards);
        let mut pools = Vec::with_capacity(cfg.shards);
        for s in 0..cfg.shards {
            let device = LaneView::pin(array.clone(), s);
            let shard: Shard<K, V> = Shard::new(
                device,
                cfg.pool_frames,
                cfg.absorber_mem,
                cfg.compact_threshold,
            )?;
            pools.push(shard.pool().clone());
            let (tx, rx) = mpsc::sync_channel(cfg.queue_depth.max(1));
            senders.push(tx);
            let worker = ShardWorker {
                shard,
                rx,
                sink: sink.clone(),
                stats: stats.clone(),
                caches: budgets
                    .iter()
                    .map(|b| HotCache::new(b.clone(), cfg.cache_records))
                    .collect(),
                cfg: cfg.clone(),
                first_error: first_error.clone(),
                failed: None,
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("emserve-shard-{s}"))
                    .spawn(move || worker.run())
                    .expect("spawn shard worker"),
            );
        }
        Ok(Server {
            cfg,
            stats,
            senders,
            workers,
            pools,
            first_error,
        })
    }

    /// The shard (and queue) a key routes to — exposed so tests and benches
    /// can reason about placement.
    pub fn shard_of(&self, tenant: u32, key: &K) -> usize {
        shard_of_key(tenant, key, self.cfg.shards)
    }

    /// Enqueue a request, blocking while the target shard's queue is full.
    pub fn submit(&self, req: Request<K, V>) -> Result<()> {
        assert!(
            (req.tenant as usize) < self.cfg.tenants,
            "tenant {} out of range (tenants = {})",
            req.tenant,
            self.cfg.tenants
        );
        let key = match &req.kind {
            ReqKind::Put(k, _) | ReqKind::Delete(k) | ReqKind::Get(k) => k,
        };
        let s = shard_of_key(req.tenant, key, self.cfg.shards);
        self.senders[s]
            .send(Msg::Req(req))
            .map_err(|_| self.current_error("shard worker gone"))
    }

    /// Flush every shard's open batch and wait until all queued work
    /// submitted before this call has been processed.
    pub fn barrier(&self) -> Result<()> {
        self.control(|reply| Msg::Barrier(reply))
    }

    /// Barrier, then force an absorber→tree compaction on every shard.
    pub fn compact_all(&self) -> Result<()> {
        self.control(|reply| Msg::Compact(reply))
    }

    fn control(&self, mk: impl Fn(SyncSender<Option<String>>) -> Msg<K, V>) -> Result<()> {
        let mut replies = Vec::with_capacity(self.senders.len());
        for tx in &self.senders {
            let (rtx, rrx) = mpsc::sync_channel(1);
            tx.send(mk(rtx))
                .map_err(|_| self.current_error("shard worker gone"))?;
            replies.push(rrx);
        }
        let mut err = None;
        for rrx in replies {
            match rrx.recv() {
                Ok(None) => {}
                Ok(Some(e)) => err = Some(e),
                Err(_) => err = Some("shard worker gone".to_string()),
            }
        }
        match err {
            Some(e) => Err(PdmError::Io(std::io::Error::other(e))),
            None => Ok(()),
        }
    }

    /// Tenant-scoped range scan `[lo, hi]`, merged across every shard
    /// (hash routing scatters a key range over all of them).  Consistent
    /// with all previously submitted writes: each shard answers from its
    /// queue, behind any queued puts/deletes.
    pub fn range(&self, tenant: u32, lo: K, hi: K) -> Result<Vec<(K, V)>> {
        let mut replies = Vec::with_capacity(self.senders.len());
        for tx in &self.senders {
            let (rtx, rrx) = mpsc::sync_channel(1);
            tx.send(Msg::Range {
                tenant,
                lo: lo.clone(),
                hi: hi.clone(),
                reply: rtx,
            })
            .map_err(|_| self.current_error("shard worker gone"))?;
            replies.push(rrx);
        }
        let mut merged: std::collections::BTreeMap<K, V> = std::collections::BTreeMap::new();
        for rrx in replies {
            match rrx.recv() {
                Ok(Ok(part)) => merged.extend(part),
                Ok(Err(e)) => return Err(PdmError::Io(std::io::Error::other(e))),
                Err(_) => {
                    return Err(self.current_error("shard worker gone"));
                }
            }
        }
        Ok(merged.into_iter().collect())
    }

    /// Serving counters (shared with every worker).
    pub fn stats(&self) -> &Arc<ServeStats> {
        &self.stats
    }

    /// Aggregate (hits, misses) across every shard's read buffer pool.
    pub fn pool_hit_stats(&self) -> (u64, u64) {
        let mut h = 0;
        let mut m = 0;
        for p in &self.pools {
            h += p.stats().hits();
            m += p.stats().misses();
        }
        (h, m)
    }

    /// The configuration this server was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Drain queues, flush every open batch (acking), stop all workers, and
    /// surface the first device error any worker hit.
    pub fn shutdown(mut self) -> Result<()> {
        for tx in &self.senders {
            let _ = tx.send(Msg::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        match self.first_error.lock().expect("error slot").take() {
            Some(e) => Err(PdmError::Io(std::io::Error::other(e))),
            None => Ok(()),
        }
    }

    fn current_error(&self, fallback: &str) -> PdmError {
        let msg = self
            .first_error
            .lock()
            .expect("error slot")
            .clone()
            .unwrap_or_else(|| fallback.to_string());
        PdmError::Io(std::io::Error::other(msg))
    }
}

impl<K: Record + Ord + Eq + Hash, V: Record> Drop for Server<K, V> {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

struct ShardWorker<K: Record + Ord + Eq + Hash, V: Record> {
    shard: Shard<K, V>,
    rx: Receiver<Msg<K, V>>,
    sink: Arc<dyn CompletionSink<V>>,
    stats: Arc<ServeStats>,
    /// Per-tenant hot caches, budgeted against the shared tenant budgets.
    caches: Vec<HotCache<K, V>>,
    cfg: ServeConfig,
    first_error: Arc<Mutex<Option<String>>>,
    /// Once set, the worker fail-stops: no more data ops, no more acks.
    failed: Option<String>,
}

impl<K, V> ShardWorker<K, V>
where
    K: Record + Ord + Eq + Hash,
    V: Record,
{
    fn run(mut self) {
        // Idle poll period when no batch is open; a deadline-bearing batch
        // shortens the wait to exactly its remaining time.
        const IDLE: Duration = Duration::from_millis(25);
        loop {
            let wait = match self.shard.batch_opened_at() {
                Some(t0) if self.shard.batch_len() > 0 => {
                    let deadline = t0 + self.cfg.batch_deadline;
                    deadline.saturating_duration_since(Instant::now())
                }
                _ => IDLE,
            };
            match self.rx.recv_timeout(wait) {
                Ok(Msg::Req(req)) => self.handle_req(req),
                Ok(Msg::Barrier(reply)) => {
                    self.flush_open_batch();
                    let _ = reply.send(self.failed.clone());
                }
                Ok(Msg::Compact(reply)) => {
                    self.flush_open_batch();
                    if self.failed.is_none() {
                        if let Err(e) = self.shard.compact() {
                            self.fail(e);
                        } else {
                            self.stats.record_compaction();
                        }
                    }
                    let _ = reply.send(self.failed.clone());
                }
                Ok(Msg::Range {
                    tenant,
                    lo,
                    hi,
                    reply,
                }) => {
                    let res = if let Some(e) = &self.failed {
                        Err(e.clone())
                    } else {
                        self.shard.range(tenant, &lo, &hi).map_err(|e| {
                            let msg = e.to_string();
                            self.fail(e);
                            msg
                        })
                    };
                    let _ = reply.send(res);
                }
                Ok(Msg::Shutdown) => {
                    self.flush_open_batch();
                    return;
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Deadline trigger: a trickle of writes still acks
                    // within batch_deadline of arriving.
                    if let Some(t0) = self.shard.batch_opened_at() {
                        if t0.elapsed() >= self.cfg.batch_deadline {
                            self.flush_open_batch();
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.flush_open_batch();
                    return;
                }
            }
        }
    }

    fn handle_req(&mut self, req: Request<K, V>) {
        if self.failed.is_some() {
            // Fail-stop: never ack what we cannot absorb.  Producers keep
            // their queue slots; the error surfaces via barrier/shutdown.
            return;
        }
        let Request {
            tenant,
            op_id,
            kind,
        } = req;
        match kind {
            ReqKind::Put(k, v) => {
                self.stats.record_put();
                self.write(tenant, op_id, k, Some(v));
            }
            ReqKind::Delete(k) => {
                self.stats.record_delete();
                self.write(tenant, op_id, k, None);
            }
            ReqKind::Get(k) => {
                self.stats.record_get();
                if let Some(v) = self.caches[tenant as usize].get(&k) {
                    self.stats.record_cache_hit();
                    self.sink.got(tenant, op_id, Some(v));
                    return;
                }
                self.stats.record_cache_miss();
                match self.shard.get(tenant, &k) {
                    Ok(found) => {
                        if let Some(v) = &found {
                            if !self.caches[tenant as usize].insert(k, v.clone()) {
                                self.stats.record_cache_rejected();
                            }
                        }
                        self.sink.got(tenant, op_id, found);
                    }
                    Err(e) => self.fail(e),
                }
            }
        }
    }

    fn write(&mut self, tenant: u32, op_id: u64, k: K, op: Option<V>) {
        // A stale cached value must never outlive the write that changed it.
        self.caches[tenant as usize].invalidate(&k);
        if self.cfg.batched {
            self.shard.enqueue(tenant, op_id, k, op);
            if self.shard.batch_len() >= self.cfg.batch_max {
                self.flush_open_batch();
            }
        } else {
            let res = match op {
                Some(v) => self.shard.put_direct(tenant, k, v),
                None => self.shard.delete_direct(tenant, k),
            };
            match res {
                Ok(()) => {
                    self.sink.acked_write(tenant, op_id);
                    self.stats.record_acked_write();
                }
                Err(e) => self.fail(e),
            }
        }
    }

    /// Flush the open batch (size, deadline, barrier, or shutdown trigger),
    /// acking each op, then compact if the delta crossed its threshold.
    fn flush_open_batch(&mut self) {
        if self.failed.is_some() || self.shard.batch_len() == 0 {
            return;
        }
        let sink = &self.sink;
        let stats = &self.stats;
        match self.shard.flush_batch(|tenant, op_id| {
            sink.acked_write(tenant, op_id);
            stats.record_acked_write();
            stats.record_batched_op();
        }) {
            Ok(n) => {
                if n > 0 {
                    self.stats.record_batch();
                }
            }
            Err(e) => {
                self.fail(e);
                return;
            }
        }
        match self.shard.maybe_compact() {
            Ok(true) => self.stats.record_compaction(),
            Ok(false) => {}
            Err(e) => self.fail(e),
        }
    }

    fn fail(&mut self, e: PdmError) {
        let msg = e.to_string();
        if self.failed.is_none() {
            self.failed = Some(msg.clone());
        }
        let mut slot = self.first_error.lock().expect("error slot");
        if slot.is_none() {
            *slot = Some(msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::Placement;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct CountingSink {
        acks: AtomicU64,
        hits: AtomicU64,
        misses: AtomicU64,
    }

    impl CountingSink {
        fn new() -> Arc<Self> {
            Arc::new(CountingSink {
                acks: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            })
        }
    }

    impl CompletionSink<u64> for CountingSink {
        fn acked_write(&self, _tenant: u32, _op_id: u64) {
            self.acks.fetch_add(1, Ordering::Relaxed);
        }
        fn got(&self, _tenant: u32, _op_id: u64, value: Option<u64>) {
            match value {
                Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
                None => self.misses.fetch_add(1, Ordering::Relaxed),
            };
        }
    }

    fn ram_array(disks: usize) -> Arc<DiskArray> {
        DiskArray::new_ram(disks, 512, Placement::Independent)
    }

    #[test]
    fn batched_writes_ack_and_read_back() {
        let sink = CountingSink::new();
        let mut cfg = ServeConfig::new(4, 2);
        cfg.batch_max = 8;
        cfg.compact_threshold = 16;
        cfg.absorber_mem = 256;
        cfg.pool_frames = 16;
        let srv: Server<u64, u64> = Server::new(ram_array(4), cfg, sink.clone()).unwrap();
        for i in 0..200u64 {
            srv.submit(Request {
                tenant: (i % 2) as u32,
                op_id: i,
                kind: ReqKind::Put(i / 2, i * 10),
            })
            .unwrap();
        }
        srv.barrier().unwrap();
        assert_eq!(sink.acks.load(Ordering::Relaxed), 200);
        for i in 0..200u64 {
            srv.submit(Request {
                tenant: (i % 2) as u32,
                op_id: 1000 + i,
                kind: ReqKind::Get(i / 2),
            })
            .unwrap();
        }
        srv.barrier().unwrap();
        assert_eq!(sink.hits.load(Ordering::Relaxed), 200);
        assert_eq!(sink.misses.load(Ordering::Relaxed), 0);
        assert!(srv.stats().batches() > 0);
        assert!(srv.stats().compactions() > 0, "threshold crossed");
        srv.shutdown().unwrap();
    }

    #[test]
    fn deadline_flush_acks_a_trickle() {
        let sink = CountingSink::new();
        let mut cfg = ServeConfig::new(1, 1);
        cfg.batch_max = 1_000_000; // size trigger unreachable
        cfg.batch_deadline = Duration::from_millis(5);
        let srv: Server<u64, u64> = Server::new(ram_array(1), cfg, sink.clone()).unwrap();
        srv.submit(Request {
            tenant: 0,
            op_id: 7,
            kind: ReqKind::Put(1, 2),
        })
        .unwrap();
        let t0 = Instant::now();
        while sink.acks.load(Ordering::Relaxed) == 0 {
            assert!(t0.elapsed() < Duration::from_secs(5), "deadline flush hung");
            std::thread::sleep(Duration::from_millis(1));
        }
        srv.shutdown().unwrap();
    }

    #[test]
    fn range_merges_across_shards_and_modes_agree() {
        for batched in [false, true] {
            let mut cfg = ServeConfig::new(3, 1);
            cfg.batched = batched;
            cfg.batch_max = 4;
            let srv: Server<u64, u64> = Server::new(ram_array(3), cfg, Arc::new(NullSink)).unwrap();
            for k in 0..50u64 {
                srv.submit(Request {
                    tenant: 0,
                    op_id: k,
                    kind: ReqKind::Put(k, k + 1),
                })
                .unwrap();
            }
            for k in (0..50u64).step_by(3) {
                srv.submit(Request {
                    tenant: 0,
                    op_id: 100 + k,
                    kind: ReqKind::Delete(k),
                })
                .unwrap();
            }
            let got = srv.range(0, 10, 20).unwrap();
            let want: Vec<(u64, u64)> = (10..=20)
                .filter(|k| k % 3 != 0)
                .map(|k| (k, k + 1))
                .collect();
            assert_eq!(got, want, "batched={batched}");
            srv.compact_all().unwrap();
            assert_eq!(srv.range(0, 10, 20).unwrap(), want, "post-compact");
            srv.shutdown().unwrap();
        }
    }

    #[test]
    fn cache_serves_repeated_hot_gets() {
        let sink = CountingSink::new();
        let mut cfg = ServeConfig::new(2, 1);
        cfg.cache_records = 64;
        let srv: Server<u64, u64> = Server::new(ram_array(2), cfg, sink.clone()).unwrap();
        for k in 0..8u64 {
            srv.submit(Request {
                tenant: 0,
                op_id: k,
                kind: ReqKind::Put(k, k),
            })
            .unwrap();
        }
        srv.barrier().unwrap();
        for round in 0..20u64 {
            for k in 0..8u64 {
                srv.submit(Request {
                    tenant: 0,
                    op_id: 100 + round * 8 + k,
                    kind: ReqKind::Get(k),
                })
                .unwrap();
            }
        }
        srv.barrier().unwrap();
        // First touch of each key misses; the other 19 rounds hit.
        assert!(srv.stats().cache_hit_rate() > 0.9);
        // A write invalidates, so the next get misses then re-admits.
        let hits_before = srv.stats().cache_hits();
        srv.submit(Request {
            tenant: 0,
            op_id: 900,
            kind: ReqKind::Put(3, 999),
        })
        .unwrap();
        srv.barrier().unwrap();
        srv.submit(Request {
            tenant: 0,
            op_id: 901,
            kind: ReqKind::Get(3),
        })
        .unwrap();
        srv.barrier().unwrap();
        assert_eq!(srv.stats().cache_hits(), hits_before, "stale entry gone");
        srv.shutdown().unwrap();
    }

    #[test]
    fn shard_of_matches_routing_fn() {
        let cfg = ServeConfig::new(5, 1);
        let srv: Server<u64, u64> = Server::new(ram_array(1), cfg, Arc::new(NullSink)).unwrap();
        for k in 0..32u64 {
            assert_eq!(srv.shard_of(0, &k), shard_of_key(0, &k, 5));
        }
        srv.shutdown().unwrap();
    }
}
