//! Hot-key read cache with per-tenant memory admission.
//!
//! One [`HotCache`] sits in front of each (shard, tenant) pair.  Entries are
//! charged against a *shared per-tenant* [`MemBudget`], so the sum of a
//! tenant's cached records across every shard never exceeds that tenant's
//! grant — one tenant's hot set cannot squeeze out another's, which is the
//! serving-layer analogue of the allocation discipline the PDM structures
//! already follow internally.  Within a cache, eviction is LRU by a logical
//! tick; ties (impossible by construction, ticks are unique) would fall to
//! key order, keeping the structure deterministic for a fixed access tape.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use em_core::{BudgetGuard, MemBudget};

struct Entry<V> {
    value: V,
    last_used: u64,
    /// Holds the tenant budget charge for this record; released on eviction.
    _guard: BudgetGuard,
}

/// A record-budgeted LRU cache of positive lookups for one (shard, tenant).
///
/// Admission can fail (returning `false` from [`HotCache::insert`]) when the
/// tenant's shared budget is exhausted *and* this cache holds nothing
/// evictable — the entry is simply not cached, never silently over-admitted.
pub struct HotCache<K, V> {
    map: HashMap<K, Entry<V>>,
    budget: Arc<MemBudget>,
    /// Local record cap for this cache, independent of the shared budget.
    capacity: usize,
    tick: u64,
}

impl<K: Clone + Eq + Hash + Ord, V: Clone> HotCache<K, V> {
    /// A cache holding at most `capacity` records locally, each admitted
    /// record charging one record on the tenant-wide `budget`.
    pub fn new(budget: Arc<MemBudget>, capacity: usize) -> Self {
        HotCache {
            map: HashMap::new(),
            budget,
            capacity,
            tick: 0,
        }
    }

    /// Cached value for `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.map.get_mut(key)?;
        e.last_used = tick;
        Some(e.value.clone())
    }

    /// Admit (or refresh) `key -> value`.  Returns `false` when the tenant
    /// budget denied admission and nothing local could be evicted.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        self.tick += 1;
        if let Some(e) = self.map.get_mut(&key) {
            e.value = value;
            e.last_used = self.tick;
            return true;
        }
        if self.capacity == 0 {
            return false;
        }
        if self.map.len() >= self.capacity {
            self.evict_lru();
        }
        let guard = match self.budget.try_charge(1) {
            Some(g) => g,
            None => {
                // The tenant's budget is held elsewhere (other shards, or a
                // scan); make room locally once, then give up gracefully.
                if !self.evict_lru() {
                    return false;
                }
                match self.budget.try_charge(1) {
                    Some(g) => g,
                    None => return false,
                }
            }
        };
        self.map.insert(
            key,
            Entry {
                value,
                last_used: self.tick,
                _guard: guard,
            },
        );
        true
    }

    /// Drop `key` if cached (called before every write to the key).
    pub fn invalidate(&mut self, key: &K) {
        self.map.remove(key);
    }

    /// Drop everything, releasing all budget charges.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Number of cached records.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Evict the least-recently-used entry; `false` if the cache was empty.
    /// Deterministic: unique ticks order entries totally, and the key order
    /// tiebreak is unreachable but keeps the scan order-insensitive.
    fn evict_lru(&mut self) -> bool {
        let victim = self
            .map
            .iter()
            .min_by(|a, b| a.1.last_used.cmp(&b.1.last_used).then(a.0.cmp(b.0)))
            .map(|(k, _)| k.clone());
        match victim {
            Some(k) => {
                self.map.remove(&k);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction_within_local_capacity() {
        let budget = MemBudget::new(100);
        let mut c: HotCache<u64, u64> = HotCache::new(budget.clone(), 2);
        assert!(c.insert(1, 10));
        assert!(c.insert(2, 20));
        assert_eq!(c.get(&1), Some(10)); // refresh 1; 2 is now LRU
        assert!(c.insert(3, 30));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(budget.used(), 2);
    }

    #[test]
    fn shared_budget_gates_admission_across_caches() {
        let budget = MemBudget::new(2);
        let mut a: HotCache<u64, u64> = HotCache::new(budget.clone(), 8);
        let mut b: HotCache<u64, u64> = HotCache::new(budget.clone(), 8);
        assert!(a.insert(1, 1));
        assert!(a.insert(2, 2));
        // Tenant budget is fully held by cache `a`; `b` may evict locally,
        // finds nothing, and must refuse.
        assert!(!b.insert(9, 9));
        assert_eq!(b.len(), 0);
        // Releasing from `a` lets `b` admit.
        a.invalidate(&1);
        assert!(b.insert(9, 9));
        assert_eq!(budget.used(), 2);
    }

    #[test]
    fn local_pressure_evicts_before_refusing() {
        let budget = MemBudget::new(1);
        let mut c: HotCache<u64, u64> = HotCache::new(budget.clone(), 8);
        assert!(c.insert(1, 1));
        // Budget exhausted by our own entry: evict it, admit the new one.
        assert!(c.insert(2, 2));
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(2));
        assert_eq!(budget.used(), 1);
    }

    #[test]
    fn invalidate_and_overwrite() {
        let budget = MemBudget::new(4);
        let mut c: HotCache<u64, u64> = HotCache::new(budget.clone(), 4);
        assert!(c.insert(1, 1));
        assert!(c.insert(1, 100)); // refresh does not double-charge
        assert_eq!(budget.used(), 1);
        assert_eq!(c.get(&1), Some(100));
        c.invalidate(&1);
        assert!(c.is_empty());
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn zero_capacity_cache_never_admits() {
        let budget = MemBudget::new(4);
        let mut c: HotCache<u64, u64> = HotCache::new(budget, 0);
        assert!(!c.insert(1, 1));
        assert!(c.is_empty());
    }
}
