//! One partition of the serving dictionary.
//!
//! A [`Shard`] pairs the authoritative B+-tree (point reads in
//! `O(log_B N)` through a [`BufferPool`]) with a buffer-tree *write
//! absorber* (amortized `O((1/B)·log_{M/B}(N/B))` per update) and an
//! in-memory *delta map* that mirrors every operation accepted since the
//! last compaction.  The delta map is what makes reads-your-writes cheap:
//! a get consults it before the tree, so neither reads nor writes ever
//! force the absorber to flush (the `BufferTree::get` path would).
//!
//! Multi-tenancy is by key prefix: the stored key is `(tenant, key)`, so
//! one physical tree serves every tenant of the shard and per-tenant range
//! scans are contiguous.  Deletes are stored in the absorber as *marked
//! records* `(value, TOMBSTONE)` rather than buffer-tree deletes — the
//! buffer tree's leaf-apply discards a delete whose key is absent from its
//! own leaves, which is correct for a self-contained dictionary but would
//! lose deletions destined for the B+-tree.  Compaction streams the
//! absorber's sorted state into [`BTree::apply_sorted_batch`], translating
//! marks back into upserts/erases, then resets absorber and delta.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::Arc;
use std::time::Instant;

use em_core::Record;
use emtree::{BTree, BufferTree};
use pdm::{BufferPool, EvictionPolicy, Result, SharedDevice};

/// Marked-record tombstone flag (0 = live, 1 = deleted).
const TOMBSTONE: u8 = 1;

/// Internal key: tenant id then user key, so tenant ranges are contiguous.
type Ik<K> = (u32, K);

/// Deterministic FNV-1a routing of `(tenant, key)` onto `shards` partitions.
///
/// `std`'s default hasher is seeded per process, which would make shard
/// placement — and therefore lane placement and every I/O trace — differ
/// between runs.  FNV-1a over the *encoded record bytes* gives the same
/// routing on every run and every platform.
pub fn shard_of_key<K: Record>(tenant: u32, key: &K, shards: usize) -> usize {
    assert!(shards > 0, "need at least one shard");
    let mut buf = vec![0u8; 4 + K::BYTES];
    buf[..4].copy_from_slice(&tenant.to_le_bytes());
    key.write_to(&mut buf[4..]);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &buf {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// A pending write destined for the absorber: who to ack, and what to apply.
struct PendingOp<K, V> {
    tenant: u32,
    op_id: u64,
    key: Ik<K>,
    /// `Some(v)` = put, `None` = delete.
    op: Option<V>,
}

/// One partition of the dictionary: B+-tree + buffer-tree absorber + delta.
///
/// Single-threaded by design — the [`Server`](crate::Server) gives each
/// shard its own drain thread and lane-pinned device, so shards never
/// contend on locks or on each other's disk queues.
pub struct Shard<K: Record + Ord + Eq + Hash, V: Record> {
    pool: Arc<BufferPool>,
    tree: BTree<Ik<K>, V>,
    absorber: BufferTree<Ik<K>, (V, u8)>,
    /// Every op since the last compaction (absorbed *or* still in-flight in
    /// `batch`): `Some(v)` put, `None` delete.  Read-your-writes overlay.
    delta: HashMap<Ik<K>, Option<V>>,
    /// Ops accepted but not yet absorbed (the open batch).
    batch: Vec<PendingOp<K, V>>,
    batch_opened: Option<Instant>,
    compact_threshold: usize,
}

impl<K, V> Shard<K, V>
where
    K: Record + Ord + Eq + Hash,
    V: Record,
{
    /// Build a shard on `device` with a `pool_frames`-frame read pool, an
    /// `absorber_mem`-record buffer-tree budget, and compaction once the
    /// delta holds `compact_threshold` distinct keys.
    pub fn new(
        device: SharedDevice,
        pool_frames: usize,
        absorber_mem: usize,
        compact_threshold: usize,
    ) -> Result<Self> {
        let pool = BufferPool::new(device.clone(), pool_frames, EvictionPolicy::Lru);
        let tree = BTree::new(pool.clone())?;
        // The absorber needs at least 32 blocks' worth of event records
        // ((ts, (tenant, key), (value, mark)) tuples); round the budget up
        // rather than aborting on small configs.
        let ev_bytes = 8 + (4 + K::BYTES) + (V::BYTES + 1);
        let ev_per_block = (device.block_size() / ev_bytes).max(1);
        let absorber = BufferTree::new(device, absorber_mem.max(32 * ev_per_block));
        Ok(Shard {
            pool,
            tree,
            absorber,
            delta: HashMap::new(),
            batch: Vec::new(),
            batch_opened: None,
            compact_threshold: compact_threshold.max(1),
        })
    }

    /// The read pool (hit/miss counters feed the serving hit-rate metric).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Distinct keys touched since the last compaction.
    pub fn pending(&self) -> usize {
        self.delta.len()
    }

    /// Ops waiting in the open (unflushed) batch.
    pub fn batch_len(&self) -> usize {
        self.batch.len()
    }

    /// When the open batch received its first op, if one is open.
    pub fn batch_opened_at(&self) -> Option<Instant> {
        self.batch_opened
    }

    /// Queue a write into the open batch (batched path).  Visible to reads
    /// immediately via the delta; acknowledged only once flushed.
    pub fn enqueue(&mut self, tenant: u32, op_id: u64, key: K, op: Option<V>) {
        let ik = (tenant, key);
        self.delta.insert(ik.clone(), op.clone());
        if self.batch.is_empty() {
            self.batch_opened = Some(Instant::now());
        }
        self.batch.push(PendingOp {
            tenant,
            op_id,
            key: ik,
            op,
        });
    }

    /// Flush the open batch into the absorber, acknowledging each op through
    /// `ack(tenant, op_id)` *after* the absorber holds it.  Returns the
    /// number of ops flushed.  Does not compact — see [`Shard::maybe_compact`].
    pub fn flush_batch(&mut self, mut ack: impl FnMut(u32, u64)) -> Result<usize> {
        let batch = std::mem::take(&mut self.batch);
        self.batch_opened = None;
        let n = batch.len();
        for p in batch {
            match p.op {
                Some(v) => self.absorber.insert(p.key, (v, 0))?,
                None => self
                    .absorber
                    .insert(p.key, (Self::zero_value(), TOMBSTONE))?,
            }
            ack(p.tenant, p.op_id);
        }
        Ok(n)
    }

    /// Write-through put (unbatched path): straight into the B+-tree.
    pub fn put_direct(&mut self, tenant: u32, key: K, value: V) -> Result<()> {
        self.tree.insert((tenant, key), value)?;
        Ok(())
    }

    /// Write-through delete (unbatched path).
    pub fn delete_direct(&mut self, tenant: u32, key: K) -> Result<()> {
        self.tree.remove(&(tenant, key))?;
        Ok(())
    }

    /// Point lookup: delta overlay first (read-your-writes, including the
    /// open batch), then the B+-tree through the pool.
    pub fn get(&self, tenant: u32, key: &K) -> Result<Option<V>> {
        let ik = (tenant, key.clone());
        match self.delta.get(&ik) {
            Some(Some(v)) => Ok(Some(v.clone())),
            Some(None) => Ok(None),
            None => self.tree.get(&ik),
        }
    }

    /// Tenant-scoped range scan over `[lo, hi]`, merging the tree's view
    /// with the delta overlay (deletes hide tree records, puts override).
    pub fn range(&self, tenant: u32, lo: &K, hi: &K) -> Result<Vec<(K, V)>> {
        if lo > hi {
            return Ok(Vec::new());
        }
        let lo_ik = (tenant, lo.clone());
        let hi_ik = (tenant, hi.clone());
        let mut merged: BTreeMap<Ik<K>, V> = self.tree.range(&lo_ik, &hi_ik)?.into_iter().collect();
        for (ik, op) in &self.delta {
            if *ik < lo_ik || *ik > hi_ik {
                continue;
            }
            match op {
                Some(v) => {
                    merged.insert(ik.clone(), v.clone());
                }
                None => {
                    merged.remove(ik);
                }
            }
        }
        Ok(merged.into_iter().map(|((_, k), v)| (k, v)).collect())
    }

    /// True when the delta has grown past the compaction threshold.
    /// Only meaningful between batches (the open batch must be flushed
    /// first so the absorber and delta agree).
    pub fn wants_compact(&self) -> bool {
        self.batch.is_empty() && self.delta.len() >= self.compact_threshold
    }

    /// Compact if [`Shard::wants_compact`]; returns whether it ran.
    pub fn maybe_compact(&mut self) -> Result<bool> {
        if self.wants_compact() {
            self.compact()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Drain the absorber into the B+-tree in one streaming pass.
    ///
    /// The absorber's sorted dump is strictly increasing in key (it resolves
    /// duplicates internally), so it feeds `apply_sorted_batch` directly:
    /// marked live records become upserts, tombstones become erases, and the
    /// tree's leaf level is rebuilt in `O((N+Δ)/B)` transfers instead of
    /// `Δ·O(log_B N)` point updates.
    pub fn compact(&mut self) -> Result<()> {
        assert!(
            self.batch.is_empty(),
            "flush the open batch before compacting"
        );
        if self.delta.is_empty() {
            return Ok(());
        }
        let ext = self.absorber.to_sorted_ext_vec()?;
        let ops = ext.to_vec()?;
        ext.free()?;
        self.tree.apply_sorted_batch(
            ops.into_iter()
                .map(|(ik, (v, dead))| (ik, (dead == 0).then_some(v))),
        )?;
        self.absorber.clear()?;
        self.delta.clear();
        Ok(())
    }

    /// Records in the authoritative tree (excludes pending delta ops).
    pub fn tree_len(&self) -> u64 {
        self.tree.len()
    }

    /// Structural self-check of the underlying B+-tree.
    pub fn check_invariants(&self) -> Result<()> {
        self.tree.check_invariants()
    }

    /// The all-zero-bytes value used to pad tombstone marks.
    fn zero_value() -> V {
        V::read_from(&vec![0u8; V::BYTES])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::{DiskArray, Placement};

    fn ram_shard(compact_threshold: usize) -> Shard<u64, u64> {
        let dev: SharedDevice = DiskArray::new_ram(1, 512, Placement::Independent);
        Shard::new(dev, 16, 256, compact_threshold).unwrap()
    }

    #[test]
    fn routing_is_deterministic_and_spread() {
        let a = shard_of_key(0, &42u64, 8);
        let b = shard_of_key(0, &42u64, 8);
        assert_eq!(a, b);
        let mut seen = [0usize; 8];
        for k in 0..800u64 {
            seen[shard_of_key(k as u32 % 3, &k, 8)] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0), "all shards used: {seen:?}");
    }

    #[test]
    fn read_your_writes_across_batch_and_compaction() {
        let mut s = ram_shard(3);
        // In-flight batch is visible before any flush.
        s.enqueue(1, 0, 10, Some(100));
        s.enqueue(1, 1, 11, Some(110));
        assert_eq!(s.get(1, &10).unwrap(), Some(100));
        assert_eq!(s.batch_len(), 2);
        let mut acks = Vec::new();
        s.flush_batch(|t, id| acks.push((t, id))).unwrap();
        assert_eq!(acks, vec![(1, 0), (1, 1)]);
        assert_eq!(s.get(1, &10).unwrap(), Some(100));
        // Delete of an absorbed key, then compaction: stays gone.
        s.enqueue(1, 2, 10, None);
        s.enqueue(1, 3, 12, Some(120));
        assert_eq!(s.get(1, &10).unwrap(), None);
        s.flush_batch(|_, _| {}).unwrap();
        assert!(s.wants_compact());
        assert!(s.maybe_compact().unwrap());
        assert_eq!(s.pending(), 0);
        assert_eq!(s.get(1, &10).unwrap(), None);
        assert_eq!(s.get(1, &11).unwrap(), Some(110));
        assert_eq!(s.get(1, &12).unwrap(), Some(120));
        assert_eq!(s.tree_len(), 2);
        s.check_invariants().unwrap();
    }

    #[test]
    fn tombstones_survive_compaction_into_the_tree() {
        let mut s = ram_shard(1);
        // Land a key in the tree via a first compaction.
        s.enqueue(7, 0, 5, Some(50));
        s.flush_batch(|_, _| {}).unwrap();
        s.maybe_compact().unwrap();
        assert_eq!(s.tree_len(), 1);
        // Delete it through the absorber path; the marked record must reach
        // apply_sorted_batch as an erase (a raw BufferTree delete would be
        // dropped because the absorber's own leaves never held the key).
        s.enqueue(7, 1, 5, None);
        s.flush_batch(|_, _| {}).unwrap();
        s.maybe_compact().unwrap();
        assert_eq!(s.get(7, &5).unwrap(), None);
        assert_eq!(s.tree_len(), 0);
    }

    #[test]
    fn tenants_are_isolated_in_ranges() {
        let mut s = ram_shard(100);
        for k in 0..10u64 {
            s.enqueue(1, k, k, Some(k * 10));
            s.enqueue(2, 100 + k, k, Some(k * 1000));
        }
        s.flush_batch(|_, _| {}).unwrap();
        let t1 = s.range(1, &2, &4).unwrap();
        assert_eq!(t1, vec![(2, 20), (3, 30), (4, 40)]);
        let t2 = s.range(2, &2, &4).unwrap();
        assert_eq!(t2, vec![(2, 2000), (3, 3000), (4, 4000)]);
        // Overlay semantics: delete one, overwrite another, still unflushed.
        s.enqueue(1, 200, 3, None);
        s.enqueue(1, 201, 4, Some(999));
        let t1 = s.range(1, &2, &4).unwrap();
        assert_eq!(t1, vec![(2, 20), (4, 999)]);
        assert_eq!(s.range(1, &9, &3).unwrap(), Vec::new());
    }

    #[test]
    fn direct_path_bypasses_the_absorber() {
        let mut s = ram_shard(1_000_000);
        s.put_direct(3, 1, 11).unwrap();
        s.put_direct(3, 2, 22).unwrap();
        s.delete_direct(3, 1).unwrap();
        assert_eq!(s.pending(), 0);
        assert_eq!(s.get(3, &1).unwrap(), None);
        assert_eq!(s.get(3, &2).unwrap(), Some(22));
        assert_eq!(s.tree_len(), 1);
    }
}
