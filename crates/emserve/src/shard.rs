//! One partition of the serving dictionary.
//!
//! A [`Shard`] pairs the authoritative B+-tree (point reads in
//! `O(log_B N)` through a [`BufferPool`]) with a buffer-tree *write
//! absorber* (amortized `O((1/B)·log_{M/B}(N/B))` per update) and an
//! in-memory *delta map* that mirrors every operation accepted since the
//! last compaction.  The delta map is what makes reads-your-writes cheap:
//! a get consults it before the tree, so neither reads nor writes ever
//! force the absorber to flush (the `BufferTree::get` path would).
//!
//! Multi-tenancy is by key prefix: the stored key is `(tenant, key)`, so
//! one physical tree serves every tenant of the shard and per-tenant range
//! scans are contiguous.  Deletes are stored in the absorber as *marked
//! records* `(value, TOMBSTONE)` rather than buffer-tree deletes — the
//! buffer tree's leaf-apply discards a delete whose key is absent from its
//! own leaves, which is correct for a self-contained dictionary but would
//! lose deletions destined for the B+-tree.  Compaction streams the
//! absorber's sorted state into [`BTree::apply_sorted_batch`], translating
//! marks back into upserts/erases, then resets absorber and delta.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::Arc;
use std::time::Instant;

use em_core::Record;
use emtree::{BTree, BufferTree};
use pdm::{BufferPool, EvictionPolicy, Journal, PdmError, Result, SharedDevice};

/// Marked-record tombstone flag (0 = live, 1 = deleted).
const TOMBSTONE: u8 = 1;

/// Internal key: tenant id then user key, so tenant ranges are contiguous.
type Ik<K> = (u32, K);

/// Deterministic FNV-1a routing of `(tenant, key)` onto `shards` partitions.
///
/// `std`'s default hasher is seeded per process, which would make shard
/// placement — and therefore lane placement and every I/O trace — differ
/// between runs.  FNV-1a over the *encoded record bytes*
/// ([`em_core::hash::fnv1a`]) gives the same routing on every run and every
/// platform; routing is persisted-state-affecting, so the golden test below
/// pins the exact placements.
pub fn shard_of_key<K: Record>(tenant: u32, key: &K, shards: usize) -> usize {
    assert!(shards > 0, "need at least one shard");
    let mut buf = vec![0u8; 4 + K::BYTES];
    buf[..4].copy_from_slice(&tenant.to_le_bytes());
    key.write_to(&mut buf[4..]);
    (em_core::hash::fnv1a(&buf) % shards as u64) as usize
}

/// A pending write destined for the absorber: who to ack, and what to apply.
struct PendingOp<K, V> {
    tenant: u32,
    op_id: u64,
    key: Ik<K>,
    /// `Some(v)` = put, `None` = delete.
    op: Option<V>,
}

/// One partition of the dictionary: B+-tree + buffer-tree absorber + delta.
///
/// Single-threaded by design — the [`Server`](crate::Server) gives each
/// shard its own drain thread and lane-pinned device, so shards never
/// contend on locks or on each other's disk queues.
pub struct Shard<K: Record + Ord + Eq + Hash, V: Record> {
    pool: Arc<BufferPool>,
    tree: BTree<Ik<K>, V>,
    absorber: BufferTree<Ik<K>, (V, u8)>,
    /// Every op since the last compaction (absorbed *or* still in-flight in
    /// `batch`): `Some(v)` put, `None` delete.  Read-your-writes overlay.
    delta: HashMap<Ik<K>, Option<V>>,
    /// Ops accepted but not yet absorbed (the open batch).
    batch: Vec<PendingOp<K, V>>,
    batch_opened: Option<Instant>,
    compact_threshold: usize,
    /// Crash-recovery journal, when the shard runs on a
    /// [`Journal`]-wrapped device.  Every batch flush and compaction
    /// commits a checkpoint (tree triple + absorber + delta manifests)
    /// before any op is acknowledged, so acked writes survive a crash.
    journal: Option<Arc<Journal>>,
}

impl<K, V> Shard<K, V>
where
    K: Record + Ord + Eq + Hash,
    V: Record,
{
    /// Build a shard on `device` with a `pool_frames`-frame read pool, an
    /// `absorber_mem`-record buffer-tree budget, and compaction once the
    /// delta holds `compact_threshold` distinct keys.
    pub fn new(
        device: SharedDevice,
        pool_frames: usize,
        absorber_mem: usize,
        compact_threshold: usize,
    ) -> Result<Self> {
        Self::build(device, None, pool_frames, absorber_mem, compact_threshold)
    }

    /// Build a journaled shard: all shard storage lives behind `journal`
    /// (shadow-block writes, checkpoint-and-rewind), and every
    /// [`flush_batch`](Self::flush_batch) commits a checkpoint *before*
    /// acknowledging, so a crash never loses an acked write.  Pair with
    /// [`recover`](Self::recover) after a crash.
    pub fn with_journal(
        journal: Arc<Journal>,
        pool_frames: usize,
        absorber_mem: usize,
        compact_threshold: usize,
    ) -> Result<Self> {
        let device: SharedDevice = Arc::clone(&journal) as SharedDevice;
        Self::build(
            device,
            Some(journal),
            pool_frames,
            absorber_mem,
            compact_threshold,
        )
    }

    fn build(
        device: SharedDevice,
        journal: Option<Arc<Journal>>,
        pool_frames: usize,
        absorber_mem: usize,
        compact_threshold: usize,
    ) -> Result<Self> {
        let pool = BufferPool::new(device.clone(), pool_frames, EvictionPolicy::Lru);
        let tree = BTree::new(pool.clone())?;
        let budget = Self::absorber_budget(&device, absorber_mem);
        let absorber = BufferTree::new(device, budget);
        Ok(Shard {
            pool,
            tree,
            absorber,
            delta: HashMap::new(),
            batch: Vec::new(),
            batch_opened: None,
            compact_threshold: compact_threshold.max(1),
            journal,
        })
    }

    /// The absorber needs at least 32 blocks' worth of event records
    /// ((ts, (tenant, key), (value, mark)) tuples); round the budget up
    /// rather than aborting on small configs.
    fn absorber_budget(device: &SharedDevice, absorber_mem: usize) -> usize {
        let ev_bytes = 8 + (4 + K::BYTES) + (V::BYTES + 1);
        let ev_per_block = (device.block_size() / ev_bytes).max(1);
        absorber_mem.max(32 * ev_per_block)
    }

    /// Rebuild a shard from `journal`'s last committed checkpoint (obtained
    /// via `pdm::Journal::recover` over the surviving medium).  A journal
    /// with no shard checkpoint yet (crash before the first flush) yields a
    /// fresh empty shard.  Un-checkpointed work — including a batch whose
    /// flush never committed — is rewound; none of it was ever acked.
    pub fn recover(
        journal: Arc<Journal>,
        pool_frames: usize,
        absorber_mem: usize,
        compact_threshold: usize,
    ) -> Result<Self> {
        let Some(bm) = journal.manifest("btree") else {
            return Self::with_journal(journal, pool_frames, absorber_mem, compact_threshold);
        };
        let corrupt = || PdmError::Io(std::io::Error::other("malformed shard checkpoint"));
        if bm.len() != 24 {
            return Err(corrupt());
        }
        let word = |i: usize| u64::from_le_bytes(bm[i * 8..(i + 1) * 8].try_into().expect("8"));
        let (root, height, len) = (
            word(0),
            u32::try_from(word(1)).map_err(|_| corrupt())?,
            word(2),
        );
        let device: SharedDevice = Arc::clone(&journal) as SharedDevice;
        let pool = BufferPool::new(device.clone(), pool_frames, EvictionPolicy::Lru);
        let tree = BTree::reattach(pool.clone(), root, height, len);
        let am = journal.manifest("absorber").ok_or_else(corrupt)?;
        let absorber = BufferTree::reattach(
            device.clone(),
            Self::absorber_budget(&device, absorber_mem),
            &am,
        )?;
        let dm = journal.manifest("delta").ok_or_else(corrupt)?;
        let mut delta = HashMap::new();
        let mut pos = 0usize;
        let n = {
            let chunk = dm.get(0..8).ok_or_else(corrupt)?;
            pos += 8;
            u64::from_le_bytes(chunk.try_into().expect("8")) as usize
        };
        for _ in 0..n {
            let kend = pos.checked_add(<Ik<K>>::BYTES).ok_or_else(corrupt)?;
            let ik = <Ik<K>>::read_from(dm.get(pos..kend).ok_or_else(corrupt)?);
            pos = kend;
            let tag = *dm.get(pos).ok_or_else(corrupt)?;
            pos += 1;
            let vend = pos.checked_add(V::BYTES).ok_or_else(corrupt)?;
            let v = V::read_from(dm.get(pos..vend).ok_or_else(corrupt)?);
            pos = vend;
            delta.insert(ik, (tag == 1).then_some(v));
        }
        if pos != dm.len() {
            return Err(corrupt());
        }
        Ok(Shard {
            pool,
            tree,
            absorber,
            delta,
            batch: Vec::new(),
            batch_opened: None,
            compact_threshold: compact_threshold.max(1),
            journal: Some(journal),
        })
    }

    /// The read pool (hit/miss counters feed the serving hit-rate metric).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Distinct keys touched since the last compaction.
    pub fn pending(&self) -> usize {
        self.delta.len()
    }

    /// Ops waiting in the open (unflushed) batch.
    pub fn batch_len(&self) -> usize {
        self.batch.len()
    }

    /// When the open batch received its first op, if one is open.
    pub fn batch_opened_at(&self) -> Option<Instant> {
        self.batch_opened
    }

    /// Queue a write into the open batch (batched path).  Visible to reads
    /// immediately via the delta; acknowledged only once flushed.
    pub fn enqueue(&mut self, tenant: u32, op_id: u64, key: K, op: Option<V>) {
        let ik = (tenant, key);
        self.delta.insert(ik.clone(), op.clone());
        if self.batch.is_empty() {
            self.batch_opened = Some(Instant::now());
        }
        self.batch.push(PendingOp {
            tenant,
            op_id,
            key: ik,
            op,
        });
    }

    /// Flush the open batch into the absorber, acknowledging each op through
    /// `ack(tenant, op_id)` *after* it is durable.  Returns the number of
    /// ops flushed.  Does not compact — see [`Shard::maybe_compact`].
    ///
    /// The ack ordering is the crash-safety contract: on a journaled shard
    /// the whole batch is committed to a checkpoint first, so a crash at any
    /// point either rewinds an entirely-unacked batch or recovers every
    /// acked op.  On an unjournaled shard a device
    /// [`barrier`](pdm::BlockDevice::barrier) runs first, so a write-behind
    /// failure surfaces as this batch's error instead of being acked around.
    pub fn flush_batch(&mut self, mut ack: impl FnMut(u32, u64)) -> Result<usize> {
        let batch = std::mem::take(&mut self.batch);
        self.batch_opened = None;
        let n = batch.len();
        let mut acks = Vec::with_capacity(n);
        for p in batch {
            match p.op {
                Some(v) => self.absorber.insert(p.key, (v, 0))?,
                None => self
                    .absorber
                    .insert(p.key, (Self::zero_value(), TOMBSTONE))?,
            }
            acks.push((p.tenant, p.op_id));
        }
        if n > 0 {
            self.checkpoint()?;
        }
        for (t, id) in acks {
            ack(t, id);
        }
        Ok(n)
    }

    /// Make all accepted state durable.  With a journal: flush the read
    /// pool's dirty frames, record the tree/absorber/delta manifests, and
    /// commit a checkpoint.  Without one: a device barrier, surfacing any
    /// dropped write-behind error (no extra transfers).
    pub fn checkpoint(&mut self) -> Result<()> {
        let Some(journal) = &self.journal else {
            return self.pool.device().barrier();
        };
        let journal = Arc::clone(journal);
        self.pool.flush()?;
        let mut bm = Vec::with_capacity(24);
        bm.extend_from_slice(&self.tree.root().to_le_bytes());
        bm.extend_from_slice(&u64::from(self.tree.height()).to_le_bytes());
        bm.extend_from_slice(&self.tree.len().to_le_bytes());
        journal.set_manifest("btree", bm);
        journal.set_manifest("absorber", self.absorber.manifest_bytes());
        journal.set_manifest("delta", self.delta_manifest());
        journal.checkpoint()
    }

    /// Serialize the delta overlay (sorted by key, so the bytes — and hence
    /// checkpoint chain sizes — are deterministic across runs).
    fn delta_manifest(&self) -> Vec<u8> {
        let mut entries: Vec<(&Ik<K>, &Option<V>)> = self.delta.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut out = Vec::with_capacity(8 + entries.len() * (<Ik<K>>::BYTES + 1 + V::BYTES));
        out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        let mut krec = vec![0u8; <Ik<K>>::BYTES];
        let mut vrec = vec![0u8; V::BYTES];
        for (ik, op) in entries {
            ik.write_to(&mut krec);
            out.extend_from_slice(&krec);
            match op {
                Some(v) => {
                    out.push(1);
                    v.write_to(&mut vrec);
                }
                None => {
                    out.push(0);
                    vrec.fill(0);
                }
            }
            out.extend_from_slice(&vrec);
        }
        out
    }

    /// Write-through put (unbatched path): straight into the B+-tree.
    pub fn put_direct(&mut self, tenant: u32, key: K, value: V) -> Result<()> {
        self.tree.insert((tenant, key), value)?;
        Ok(())
    }

    /// Write-through delete (unbatched path).
    pub fn delete_direct(&mut self, tenant: u32, key: K) -> Result<()> {
        self.tree.remove(&(tenant, key))?;
        Ok(())
    }

    /// Point lookup: delta overlay first (read-your-writes, including the
    /// open batch), then the B+-tree through the pool.
    pub fn get(&self, tenant: u32, key: &K) -> Result<Option<V>> {
        let ik = (tenant, key.clone());
        match self.delta.get(&ik) {
            Some(Some(v)) => Ok(Some(v.clone())),
            Some(None) => Ok(None),
            None => self.tree.get(&ik),
        }
    }

    /// Tenant-scoped range scan over `[lo, hi]`, merging the tree's view
    /// with the delta overlay (deletes hide tree records, puts override).
    pub fn range(&self, tenant: u32, lo: &K, hi: &K) -> Result<Vec<(K, V)>> {
        if lo > hi {
            return Ok(Vec::new());
        }
        let lo_ik = (tenant, lo.clone());
        let hi_ik = (tenant, hi.clone());
        let mut merged: BTreeMap<Ik<K>, V> = self.tree.range(&lo_ik, &hi_ik)?.into_iter().collect();
        for (ik, op) in &self.delta {
            if *ik < lo_ik || *ik > hi_ik {
                continue;
            }
            match op {
                Some(v) => {
                    merged.insert(ik.clone(), v.clone());
                }
                None => {
                    merged.remove(ik);
                }
            }
        }
        Ok(merged.into_iter().map(|((_, k), v)| (k, v)).collect())
    }

    /// True when the delta has grown past the compaction threshold.
    /// Only meaningful between batches (the open batch must be flushed
    /// first so the absorber and delta agree).
    pub fn wants_compact(&self) -> bool {
        self.batch.is_empty() && self.delta.len() >= self.compact_threshold
    }

    /// Compact if [`Shard::wants_compact`]; returns whether it ran.
    pub fn maybe_compact(&mut self) -> Result<bool> {
        if self.wants_compact() {
            self.compact()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Drain the absorber into the B+-tree in one streaming pass.
    ///
    /// The absorber's sorted dump is strictly increasing in key (it resolves
    /// duplicates internally), so it feeds `apply_sorted_batch` directly:
    /// marked live records become upserts, tombstones become erases, and the
    /// tree's leaf level is rebuilt in `O((N+Δ)/B)` transfers instead of
    /// `Δ·O(log_B N)` point updates.
    pub fn compact(&mut self) -> Result<()> {
        assert!(
            self.batch.is_empty(),
            "flush the open batch before compacting"
        );
        if self.delta.is_empty() {
            return Ok(());
        }
        let ext = self.absorber.to_sorted_ext_vec()?;
        let ops = ext.to_vec()?;
        ext.free()?;
        self.tree.apply_sorted_batch(
            ops.into_iter()
                .map(|(ik, (v, dead))| (ik, (dead == 0).then_some(v))),
        )?;
        self.absorber.clear()?;
        self.delta.clear();
        // On a journaled shard the rebuild must commit atomically: the old
        // tree's freed leaves are deferred inside the journal until this
        // checkpoint, so a crash mid-compaction rewinds to the intact
        // pre-compaction state.
        if self.journal.is_some() {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Records in the authoritative tree (excludes pending delta ops).
    pub fn tree_len(&self) -> u64 {
        self.tree.len()
    }

    /// Structural self-check of the underlying B+-tree.
    pub fn check_invariants(&self) -> Result<()> {
        self.tree.check_invariants()
    }

    /// The all-zero-bytes value used to pad tombstone marks.
    fn zero_value() -> V {
        V::read_from(&vec![0u8; V::BYTES])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::{DiskArray, Placement};

    fn ram_shard(compact_threshold: usize) -> Shard<u64, u64> {
        let dev: SharedDevice = DiskArray::new_ram(1, 512, Placement::Independent);
        Shard::new(dev, 16, 256, compact_threshold).unwrap()
    }

    #[test]
    fn routing_matches_golden_placements() {
        // Shard routing decides which lane-pinned device owns a key, so a
        // change here silently orphans every record a prior run persisted.
        // These placements were produced by the original in-crate FNV-1a
        // and must survive the move to `em_core::hash` bit-for-bit.
        let got: Vec<usize> = [0u32, 1, 2]
            .iter()
            .flat_map(|&t| {
                [0u64, 1, 42, 1 << 40, 0xDEAD_BEEF]
                    .iter()
                    .map(move |&k| shard_of_key(t, &k, 8))
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(got, [5, 4, 7, 2, 3, 4, 5, 6, 7, 2, 7, 6, 5, 4, 1]);
        let five: Vec<usize> = (0u64..10).map(|k| shard_of_key(0, &k, 5)).collect();
        assert_eq!(five, [0, 1, 3, 4, 0, 1, 2, 4, 1, 2]);
    }

    #[test]
    fn routing_is_deterministic_and_spread() {
        let a = shard_of_key(0, &42u64, 8);
        let b = shard_of_key(0, &42u64, 8);
        assert_eq!(a, b);
        let mut seen = [0usize; 8];
        for k in 0..800u64 {
            seen[shard_of_key(k as u32 % 3, &k, 8)] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0), "all shards used: {seen:?}");
    }

    #[test]
    fn read_your_writes_across_batch_and_compaction() {
        let mut s = ram_shard(3);
        // In-flight batch is visible before any flush.
        s.enqueue(1, 0, 10, Some(100));
        s.enqueue(1, 1, 11, Some(110));
        assert_eq!(s.get(1, &10).unwrap(), Some(100));
        assert_eq!(s.batch_len(), 2);
        let mut acks = Vec::new();
        s.flush_batch(|t, id| acks.push((t, id))).unwrap();
        assert_eq!(acks, vec![(1, 0), (1, 1)]);
        assert_eq!(s.get(1, &10).unwrap(), Some(100));
        // Delete of an absorbed key, then compaction: stays gone.
        s.enqueue(1, 2, 10, None);
        s.enqueue(1, 3, 12, Some(120));
        assert_eq!(s.get(1, &10).unwrap(), None);
        s.flush_batch(|_, _| {}).unwrap();
        assert!(s.wants_compact());
        assert!(s.maybe_compact().unwrap());
        assert_eq!(s.pending(), 0);
        assert_eq!(s.get(1, &10).unwrap(), None);
        assert_eq!(s.get(1, &11).unwrap(), Some(110));
        assert_eq!(s.get(1, &12).unwrap(), Some(120));
        assert_eq!(s.tree_len(), 2);
        s.check_invariants().unwrap();
    }

    #[test]
    fn tombstones_survive_compaction_into_the_tree() {
        let mut s = ram_shard(1);
        // Land a key in the tree via a first compaction.
        s.enqueue(7, 0, 5, Some(50));
        s.flush_batch(|_, _| {}).unwrap();
        s.maybe_compact().unwrap();
        assert_eq!(s.tree_len(), 1);
        // Delete it through the absorber path; the marked record must reach
        // apply_sorted_batch as an erase (a raw BufferTree delete would be
        // dropped because the absorber's own leaves never held the key).
        s.enqueue(7, 1, 5, None);
        s.flush_batch(|_, _| {}).unwrap();
        s.maybe_compact().unwrap();
        assert_eq!(s.get(7, &5).unwrap(), None);
        assert_eq!(s.tree_len(), 0);
    }

    #[test]
    fn tenants_are_isolated_in_ranges() {
        let mut s = ram_shard(100);
        for k in 0..10u64 {
            s.enqueue(1, k, k, Some(k * 10));
            s.enqueue(2, 100 + k, k, Some(k * 1000));
        }
        s.flush_batch(|_, _| {}).unwrap();
        let t1 = s.range(1, &2, &4).unwrap();
        assert_eq!(t1, vec![(2, 20), (3, 30), (4, 40)]);
        let t2 = s.range(2, &2, &4).unwrap();
        assert_eq!(t2, vec![(2, 2000), (3, 3000), (4, 4000)]);
        // Overlay semantics: delete one, overwrite another, still unflushed.
        s.enqueue(1, 200, 3, None);
        s.enqueue(1, 201, 4, Some(999));
        let t1 = s.range(1, &2, &4).unwrap();
        assert_eq!(t1, vec![(2, 20), (4, 999)]);
        assert_eq!(s.range(1, &9, &3).unwrap(), Vec::new());
    }

    /// One scripted journaled-shard run on a device that crashes after `k`
    /// transfers.  Returns the model of *acked* state, whether the run
    /// crashed, and the total transfers performed.
    fn crashy_run(k: u64) -> (BTreeMap<u64, Option<u64>>, bool, u64) {
        use pdm::{CrashSwitch, FaultDisk, FaultPlan, IoStats, Journal, RamDisk};
        const KEYS: u64 = 40;
        let bs = 512;
        let stats = IoStats::new(1, bs);
        let ram = Arc::new(RamDisk::with_stats(bs, Arc::clone(&stats), 0));
        // First boot happens on the pristine medium: the header pair exists
        // before the machine starts failing.
        let j0 = Journal::format(Arc::clone(&ram) as SharedDevice).unwrap();
        let headers = j0.header_blocks().unwrap();
        drop(j0);
        let faulty = FaultDisk::wrap(
            Arc::clone(&ram) as SharedDevice,
            FaultPlan::new(0).with_crash(CrashSwitch::after(k)),
        );
        // `acked` tracks what clients were promised; `pending` additionally
        // holds the batch whose checkpoint was in flight at the crash.  A
        // crash after the journal's commit point but before `flush_batch`
        // returns leaves that batch durable-but-unacked, so the recovered
        // state must equal one of the two — never a mix.
        let mut acked: BTreeMap<u64, Option<u64>> = BTreeMap::new();
        let mut pending: BTreeMap<u64, Option<u64>> = BTreeMap::new();
        let mut crashed = true;
        if let Ok(j) = Journal::recover(faulty as SharedDevice, headers) {
            if let Ok(mut s) = Shard::<u64, u64>::recover(j, 16, 256, 16) {
                let mut op_id = 0u64;
                let result: Result<()> = (|| {
                    for round in 0..10u64 {
                        for i in 0..8u64 {
                            let key = (round * 8 + i) % KEYS;
                            let op = ((round + i) % 5 != 0).then_some(key * 10 + round);
                            s.enqueue(1, op_id, key, op);
                            pending.insert(key, op);
                            op_id += 1;
                        }
                        let mut n_acked = 0usize;
                        s.flush_batch(|_, _| n_acked += 1)?;
                        assert_eq!(n_acked, 8, "whole batch acked after its checkpoint");
                        acked = pending.clone();
                        s.maybe_compact()?;
                    }
                    Ok(())
                })();
                crashed = result.is_err();
                // A crashed shard must not run Drop (it would free blocks the
                // recovered shard owns); leak it like the process it models.
                std::mem::forget(s);
            }
        }
        // Reboot on the surviving medium and verify every promise.
        let j2 = Journal::recover(Arc::clone(&ram) as SharedDevice, headers).unwrap();
        let s2 = Shard::<u64, u64>::recover(j2, 16, 256, 16).unwrap();
        let recovered: BTreeMap<u64, Option<u64>> = (0..KEYS)
            .map(|key| (key, s2.get(1, &key).unwrap()))
            .collect();
        let flat = |m: &BTreeMap<u64, Option<u64>>| -> BTreeMap<u64, Option<u64>> {
            (0..KEYS)
                .map(|k| (k, m.get(&k).cloned().flatten()))
                .collect()
        };
        assert!(
            recovered == flat(&acked) || recovered == flat(&pending),
            "crash at {k}: recovered state matches neither the acked model \
             nor the acked-plus-in-flight-batch model"
        );
        s2.check_invariants().unwrap();
        (acked, crashed, stats.snapshot().total())
    }

    #[test]
    fn journaled_shard_acked_writes_survive_any_crash_point() {
        let (model, crashed, total) = crashy_run(u64::MAX);
        assert!(!crashed);
        assert_eq!(model.len(), 40, "fault-free run touched every key");
        // Sweep ~30 crash points across the whole run.
        let step = (total / 30).max(1);
        let mut mid_run_recoveries = 0;
        for k in (0..total).step_by(step as usize) {
            let (model, crashed, _) = crashy_run(k);
            if crashed && !model.is_empty() {
                mid_run_recoveries += 1;
            }
        }
        assert!(
            mid_run_recoveries > 0,
            "sweep never crashed after an acked batch — widen it"
        );
    }

    #[test]
    fn direct_path_bypasses_the_absorber() {
        let mut s = ram_shard(1_000_000);
        s.put_direct(3, 1, 11).unwrap();
        s.put_direct(3, 2, 22).unwrap();
        s.delete_direct(3, 1).unwrap();
        assert_eq!(s.pending(), 0);
        assert_eq!(s.get(3, &1).unwrap(), None);
        assert_eq!(s.get(3, &2).unwrap(), Some(22));
        assert_eq!(s.tree_len(), 1);
    }
}
