//! Loser (tournament) tree: the k-way merge kernel.
//!
//! A binary min-heap pays up to two sift passes per merged record (`pop`
//! then `push`), and each sift level costs *two* comparisons (left child,
//! right child).  A loser tree stores, at every internal node, the *loser*
//! of the match played there, with the overall winner cached at the root.
//! Replacing the winner's key is then a single leaf-to-root pass of exactly
//! `⌈log₂ k⌉` matches, each a **single** comparison — the classic kernel of
//! replacement-selection tape sorts (Knuth Vol. 3, §5.4.1) and of every
//! serious external merge implementation since.
//!
//! Two further properties matter for the merge loop in [`crate::merge`]:
//!
//! * **Free tie-break by run index.**  Leaves are identified with run
//!   indices, and a match between runs `i < j` is decided by one call
//!   `less(key_j, key_i)` — `i` wins unless `j` is *strictly* smaller.
//!   Ties therefore always resolve toward the lower run index without a
//!   second comparison, which is what makes the merge stable across runs.
//! * **A cheap challenger bound.**  Every run that could overtake the
//!   current winner lost to it somewhere on the winner's leaf-to-root path,
//!   so the minimum over that path's `⌈log₂ k⌉` stored losers is exactly
//!   the second-best run.  The merge uses it as a drain threshold: records
//!   from the winner's block keep flowing with *one* comparison each (and no
//!   tree pass at all) until one would lose to the challenger.

/// Tournament tree of losers over `k` runs with an explicit comparator.
///
/// Exhausted runs are represented by `None` keys, which lose every match
/// (they compare as `+∞`), so the tree needs no separate removal operation:
/// feeding `None` into [`replace_winner`](Self::replace_winner) retires the
/// run in the same leaf-to-root pass.
pub(crate) struct LoserTree<R, F> {
    k: usize,
    /// Current key of each run; `None` = exhausted.
    keys: Vec<Option<R>>,
    /// `tree[1..k]` hold the losers of the internal matches (conceptual node
    /// `c` has children `2c` and `2c+1`, leaves live at `k..2k`); `tree[0]`
    /// caches the overall winner.  All entries are run indices.
    tree: Vec<usize>,
    less: F,
}

impl<R, F: Fn(&R, &R) -> bool> LoserTree<R, F> {
    /// Build the tournament over the initial `keys` (one per run, `None`
    /// for an empty run).  Costs `k − 1` comparisons.
    pub fn new(keys: Vec<Option<R>>, less: F) -> Self {
        let k = keys.len();
        assert!(k >= 1, "loser tree needs at least one run");
        let mut lt = LoserTree {
            k,
            keys,
            tree: vec![0; k],
            less,
        };
        lt.tree[0] = lt.build(1);
        lt
    }

    /// Play the subtournament rooted at conceptual node `c`, storing losers,
    /// and return its winner.
    fn build(&mut self, c: usize) -> usize {
        if self.k == 1 {
            return 0;
        }
        if c >= self.k {
            return c - self.k; // leaf: conceptual node k+j is run j
        }
        let a = self.build(2 * c);
        let b = self.build(2 * c + 1);
        let (winner, loser) = if self.beats(a, b) { (a, b) } else { (b, a) };
        self.tree[c] = loser;
        winner
    }

    /// Does run `i`'s current key win a match against run `j`'s?  `None`
    /// keys lose to everything (two exhausted runs tie toward the lower
    /// index); ties between live keys resolve toward the lower run index
    /// with a single `less` call.
    fn beats(&self, i: usize, j: usize) -> bool {
        match (&self.keys[i], &self.keys[j]) {
            (None, None) => i < j,
            (None, Some(_)) => false,
            (Some(_), None) => true,
            (Some(a), Some(b)) => {
                if i < j {
                    !(self.less)(b, a)
                } else {
                    (self.less)(a, b)
                }
            }
        }
    }

    /// The run holding the smallest current key, or `None` if every run is
    /// exhausted.
    pub fn winner(&self) -> Option<usize> {
        let w = self.tree[0];
        self.keys[w].as_ref().map(|_| w)
    }

    /// The current winner's key (`None` once all runs are exhausted).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn winner_key(&self) -> Option<&R> {
        self.keys[self.tree[0]].as_ref()
    }

    /// The second-best run and its key: the best among the losers stored on
    /// the winner's leaf-to-root path.  `None` when no other live run
    /// remains (then the winner may drain unconditionally).  Costs at most
    /// `⌈log₂ k⌉ − 1` comparisons.
    pub fn challenger(&self) -> Option<(usize, &R)> {
        let w = self.tree[0];
        let mut best: Option<usize> = None;
        let mut node = (self.k + w) / 2;
        while node >= 1 {
            let c = self.tree[node];
            if best.is_none_or(|b| self.beats(c, b)) {
                best = Some(c);
            }
            node /= 2;
        }
        let b = best?;
        self.keys[b].as_ref().map(|key| (b, key))
    }

    /// Replace the winner's key with `next` (`None` = run exhausted), fix
    /// the tournament with one leaf-to-root pass (`⌈log₂ k⌉` comparisons),
    /// and return the displaced key.
    ///
    /// # Panics
    /// If every run is already exhausted.
    pub fn replace_winner(&mut self, next: Option<R>) -> R {
        let w = self.tree[0];
        let old = self.keys[w]
            .take()
            .expect("replace_winner on exhausted tree");
        self.keys[w] = next;
        let mut winner = w;
        let mut node = (self.k + w) / 2;
        while node >= 1 {
            if self.beats(self.tree[node], winner) {
                std::mem::swap(&mut winner, &mut self.tree[node]);
            }
            node /= 2;
        }
        self.tree[0] = winner;
        old
    }

    /// Fast path: swap `next` into the winner's leaf **without** a tree
    /// pass, returning the displaced key.  Sound only when `next` still
    /// beats the [`challenger`](Self::challenger) (with the winner's run
    /// index as tie-break) — then every match on the winner's path would
    /// replay identically, so the tree needs no adjustment.
    ///
    /// # Panics
    /// If every run is already exhausted.
    pub fn swap_winner(&mut self, next: R) -> R {
        let w = self.tree[0];
        self.keys[w]
            .replace(next)
            .expect("swap_winner on exhausted tree")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain a tree built over `runs` by feeding each winner its run's next
    /// record, mimicking the merge loop (slow path only).
    fn merge_all(runs: Vec<Vec<u32>>) -> Vec<u32> {
        let mut cursors = vec![1usize; runs.len()];
        let keys: Vec<Option<u32>> = runs.iter().map(|r| r.first().copied()).collect();
        let mut lt = LoserTree::new(keys, |a: &u32, b: &u32| a < b);
        let mut out = Vec::new();
        while let Some(w) = lt.winner() {
            let next = runs[w].get(cursors[w]).copied();
            cursors[w] += 1;
            out.push(lt.replace_winner(next));
        }
        out
    }

    #[test]
    fn k1_single_run_drains_in_order() {
        assert_eq!(merge_all(vec![vec![1, 2, 3]]), vec![1, 2, 3]);
    }

    #[test]
    fn k2_interleaves() {
        assert_eq!(
            merge_all(vec![vec![1, 4, 6], vec![2, 3, 5]]),
            vec![1, 2, 3, 4, 5, 6]
        );
    }

    #[test]
    fn empty_runs_are_skipped() {
        assert_eq!(
            merge_all(vec![vec![], vec![2, 4], vec![], vec![1, 3]]),
            vec![1, 2, 3, 4]
        );
        assert_eq!(merge_all(vec![vec![], vec![]]), Vec::<u32>::new());
    }

    #[test]
    fn duplicate_heavy_ties_resolve_by_run_index() {
        // All-equal keys: the stable-merge order is ALL of run 0's records,
        // then run 1's, then run 2's — a lower-index run keeps winning ties
        // until it is exhausted.
        let out = merge_all(vec![vec![7, 7], vec![7, 7], vec![7, 7]]);
        assert_eq!(out, vec![7; 6]);
        let mut cursors = [1usize; 3];
        let mut lt = LoserTree::new(vec![Some((7u32, 0)), Some((7, 1)), Some((7, 2))], |a, b| {
            a.0 < b.0
        });
        let mut tagged = Vec::new();
        while let Some(w) = lt.winner() {
            let next = if cursors[w] < 2 { Some((7, w)) } else { None };
            cursors[w] += 1;
            tagged.push(lt.replace_winner(next).1);
        }
        assert_eq!(
            tagged,
            vec![0, 0, 1, 1, 2, 2],
            "equal keys drain run-by-run, lowest first"
        );
    }

    #[test]
    fn descending_comparator() {
        let out = {
            let runs = [vec![9u32, 5, 1], vec![8, 4, 2]];
            let keys: Vec<Option<u32>> = runs.iter().map(|r| r.first().copied()).collect();
            let mut cursors = [1usize; 2];
            let mut lt = LoserTree::new(keys, |a: &u32, b: &u32| a > b);
            let mut out = Vec::new();
            while let Some(w) = lt.winner() {
                let next = runs[w].get(cursors[w]).copied();
                cursors[w] += 1;
                out.push(lt.replace_winner(next));
            }
            out
        };
        assert_eq!(out, vec![9, 8, 5, 4, 2, 1]);
    }

    #[test]
    fn challenger_is_true_second_best() {
        // Construct the lopsided case where the root loser is NOT the
        // second-best: w=1 beats a=2 first, then b=10 at the root.
        let lt = LoserTree::new(vec![Some(1u32), Some(2), Some(10), Some(20)], |a, b| a < b);
        assert_eq!(lt.winner(), Some(0));
        let (ci, ck) = lt.challenger().expect("live challenger");
        assert_eq!((ci, *ck), (1, 2), "challenger must be the global runner-up");
    }

    #[test]
    fn challenger_none_when_all_others_exhausted() {
        let mut lt = LoserTree::new(vec![Some(5u32), Some(1)], |a, b| a < b);
        assert_eq!(lt.replace_winner(None), 1);
        assert_eq!(lt.winner(), Some(0));
        assert!(lt.challenger().is_none(), "no live second run");
        let single = LoserTree::new(vec![Some(3u32)], |a: &u32, b: &u32| a < b);
        assert!(single.challenger().is_none(), "k = 1 has no challenger");
    }

    #[test]
    fn swap_winner_fast_path_preserves_order() {
        let mut lt = LoserTree::new(vec![Some(1u32), Some(50), Some(60)], |a, b| a < b);
        // 1 < 10 < 50 (challenger): swapping 10 in keeps run 0 the winner.
        assert_eq!(lt.swap_winner(10), 1);
        assert_eq!(lt.winner(), Some(0));
        assert_eq!(lt.winner_key(), Some(&10));
        assert_eq!(lt.replace_winner(None), 10);
        assert_eq!(lt.winner(), Some(1));
    }

    #[test]
    fn random_runs_match_sorted_reference() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..50 {
            let k: usize = rng.gen_range(1..10);
            let runs: Vec<Vec<u32>> = (0..k)
                .map(|_| {
                    let len = rng.gen_range(0..40);
                    let mut v: Vec<u32> = (0..len).map(|_| rng.gen_range(0..100)).collect();
                    v.sort_unstable();
                    v
                })
                .collect();
            let mut expect: Vec<u32> = runs.iter().flatten().copied().collect();
            expect.sort_unstable();
            assert_eq!(merge_all(runs), expect, "trial {trial}");
        }
    }
}
