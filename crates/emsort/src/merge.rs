//! Multiway merge sort.
//!
//! The survey's optimal sorting algorithm: form sorted runs, then repeatedly
//! merge up to `k = Θ(M/B)` runs at a time until one remains.  With fan-in
//! `k = M/B − 1` (one memory block buffers each input run, one buffers the
//! output), `⌈N/M⌉` initial runs shrink by a factor `k` per pass, giving
//!
//! ```text
//! I/Os = 2·(N/B) · (1 + ⌈log_k ⌈N/M⌉⌉)  =  Θ((N/B) · log_{M/B}(N/B))
//! ```
//!
//! which matches the lower bound — the headline result the experiment
//! harness (F1/F2) verifies against [`em_core::bounds::merge_sort_ios`].
//!
//! The compute side of the merge is a [loser tree](crate::losertree) —
//! `⌈log₂ k⌉` comparisons per record with a block-drain fast path — with a
//! binary-heap kernel kept for tiny fan-ins and A/B experiments
//! ([`MergeKernel`]).  The I/O side is schedule by *forecasting*
//! ([`crate::forecast`]): each run's block-head keys decide which run's next
//! block is prefetched first.  Neither choice changes which transfers
//! happen — only when, and how much CPU sits between them.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use em_core::{ExtVec, ExtVecReader, ExtVecWriter, IoWaitSink, MemBudget, Record};
use pdm::Result;

use crate::forecast::Forecaster;
use crate::heap::MinHeap;
use crate::losertree::LoserTree;
use crate::runs::form_runs_impl;
use crate::{MergeKernel, OverlapConfig, SortConfig};

/// Sort `input` into a new external array on the same device, using natural
/// ordering.  See [`merge_sort_by`].
///
/// ```
/// use em_core::{EmConfig, ExtVec};
/// use emsort::{merge_sort, SortConfig};
///
/// let cfg = EmConfig::new(512, 8);
/// let device = cfg.ram_disk();
/// let input = ExtVec::from_slice(device, &[5u64, 1, 4, 2, 3])?;
/// let sorted = merge_sort(&input, &SortConfig::new(cfg.mem_records::<u64>()))?;
/// assert_eq!(sorted.to_vec()?, vec![1, 2, 3, 4, 5]);
/// # Ok::<(), pdm::PdmError>(())
/// ```
pub fn merge_sort<R: Record + Ord>(input: &ExtVec<R>, cfg: &SortConfig) -> Result<ExtVec<R>> {
    merge_sort_by(input, cfg, |a, b| a < b)
}

/// Sort `input` by a strict-less predicate.
///
/// Intermediate runs are freed as they are consumed, so peak disk usage is
/// `≈ 2N/B` blocks beyond the input.  The input itself is left untouched.
pub fn merge_sort_by<R, F>(input: &ExtVec<R>, cfg: &SortConfig, less: F) -> Result<ExtVec<R>>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy + Send,
{
    merge_sort_impl(input, cfg, less, false).map(|(out, _)| out)
}

/// Wall-clock and I/O-wait breakdown of one sort, phase by phase.
///
/// `*_secs` are wall-clock; `*_io_wait_secs` are the portions of those spent
/// blocked on device transfers (everything else is CPU: sorting chunks,
/// running the merge kernel).  A sort is compute-bound in a phase when its
/// I/O wait is a small fraction of its wall time — the regime distinction
/// discussed in `DESIGN.md`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SortMetrics {
    /// Wall-clock seconds spent forming initial runs.
    pub run_formation_secs: f64,
    /// Seconds of `run_formation_secs` spent blocked on transfers.
    pub run_formation_io_wait_secs: f64,
    /// Wall-clock seconds spent in merge passes.
    pub merge_secs: f64,
    /// Seconds of `merge_secs` spent blocked on transfers.
    pub merge_io_wait_secs: f64,
    /// Number of merge levels (times the data is rewritten after run
    /// formation); 0 when run formation already yields a single run.
    pub merge_passes: u32,
}

/// [`merge_sort_by`] plus a per-phase [`SortMetrics`] breakdown.
///
/// The instrumentation wraps every blocking device wait in a timestamp pair;
/// the sort itself is bit-identical to the unmetered one.
pub fn merge_sort_with_metrics<R, F>(
    input: &ExtVec<R>,
    cfg: &SortConfig,
    less: F,
) -> Result<(ExtVec<R>, SortMetrics)>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy + Send,
{
    merge_sort_impl(input, cfg, less, true)
}

fn merge_sort_impl<R, F>(
    input: &ExtVec<R>,
    cfg: &SortConfig,
    less: F,
    timed: bool,
) -> Result<(ExtVec<R>, SortMetrics)>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy + Send,
{
    let mut metrics = SortMetrics::default();
    if input.is_empty() {
        return Ok((ExtVec::new(input.device().clone()), metrics));
    }
    let k = cfg.effective_fan_in(input.per_block());
    let ov = cfg.overlap;
    // Overlap headroom beyond M: read-ahead for each of the k input runs
    // plus write-behind for the one output stream — the writer's depth is
    // per disk, so on an independent array it scales by the lane count to
    // keep every disk's queue fed.  Fan-in and run sizes are computed from
    // `mem_records` alone, so counts match the sync pipeline.
    let lanes = input.device().stream_lanes();
    let wb = (ov.write_behind * lanes).max(if ov.read_ahead > 0 && cfg.forecast {
        k * ov.read_ahead
    } else {
        0
    });
    let reserve = (k * ov.read_ahead + wb) * input.per_block();
    let budget = MemBudget::new(cfg.mem_records + reserve);

    let nanos_of = |sink: &Option<IoWaitSink>| {
        sink.as_ref()
            .map_or(0.0, |s| s.load(Ordering::Relaxed) as f64 / 1e9)
    };

    let run_wait: Option<IoWaitSink> = timed.then(IoWaitSink::default);
    let t0 = Instant::now();
    let mut queue: VecDeque<ExtVec<R>> =
        form_runs_impl(input, cfg, less, run_wait.as_ref())?.into();
    metrics.run_formation_secs = t0.elapsed().as_secs_f64();
    metrics.run_formation_io_wait_secs = nanos_of(&run_wait);

    // Merge levels: ⌈log_k(initial runs)⌉.
    let mut remaining = queue.len();
    while remaining > 1 {
        remaining = remaining.div_ceil(k);
        metrics.merge_passes += 1;
    }

    let merge_wait: Option<IoWaitSink> = timed.then(IoWaitSink::default);
    let t1 = Instant::now();
    let mut merged_streams = 0usize;
    while queue.len() > 1 {
        let take = k.min(queue.len());
        let group: Vec<ExtVec<R>> = queue.drain(..take).collect();
        // Stagger each merge output's start lane the way run formation
        // staggers runs: in a multi-pass merge these streams are next-pass
        // runs, and unstaggered equal-length runs all place block j on the
        // same disk (see `BlockDevice::direct_next_stream`).
        group[0].device().direct_next_stream(merged_streams);
        merged_streams += 1;
        let merged = merge_runs_inner(
            &group,
            &budget,
            ov,
            cfg.kernel,
            cfg.forecast,
            merge_wait.as_ref(),
            less,
        )?;
        for run in group {
            run.free()?;
        }
        queue.push_back(merged);
    }
    metrics.merge_secs = t1.elapsed().as_secs_f64();
    metrics.merge_io_wait_secs = nanos_of(&merge_wait);
    Ok((
        queue.pop_front().expect("nonempty input yields a run"),
        metrics,
    ))
}

/// Merge already-sorted `runs` into one sorted array, charging
/// `(k+1)·B` records against `budget`.
///
/// Exposed because other crates reuse single merges (e.g. merging delta runs
/// in graph pipelines).  Costs one read of every input block and one write
/// of every output block.  Runs synchronously with the default kernel; use
/// [`merge_runs_with`] to choose overlap, kernel, and forecasting.
pub fn merge_runs_by<R, F>(
    runs: &[ExtVec<R>],
    budget: &Arc<MemBudget>,
    less: F,
) -> Result<ExtVec<R>>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    merge_runs_inner(
        runs,
        budget,
        OverlapConfig::off(),
        MergeKernel::Auto,
        false,
        None,
        less,
    )
}

/// One k-way merge under `cfg`'s overlap, kernel, and forecasting choices.
///
/// Charges `(k+1)·B` records against `budget`, plus (when overlap is on)
/// whatever read-ahead pool the budget's headroom allows.  Like every
/// overlap feature in this workspace, kernel and forecasting choices move
/// wall-clock time only: the transfers performed are identical for every
/// combination.
pub fn merge_runs_with<R, F>(
    runs: &[ExtVec<R>],
    budget: &Arc<MemBudget>,
    cfg: &SortConfig,
    less: F,
) -> Result<ExtVec<R>>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    merge_runs_inner(
        runs,
        budget,
        cfg.overlap,
        cfg.kernel,
        cfg.forecast,
        None,
        less,
    )
}

/// One k-way merge with optional read-ahead on each run and write-behind on
/// the output.  The overlap buffers come from `budget` headroom via
/// `try_charge`, so a tight budget silently degrades to the synchronous
/// merge; the transfers performed are identical either way.
///
/// With `forecast` on (and read-ahead requested, and block-head metadata
/// present on every run), the per-run read-ahead buffers become one shared
/// pool scheduled by a [`Forecaster`]: the run whose next block has the
/// smallest leading key gets the next buffer.
fn merge_runs_inner<R, F>(
    runs: &[ExtVec<R>],
    budget: &Arc<MemBudget>,
    ov: OverlapConfig,
    kernel: MergeKernel,
    forecast: bool,
    io_wait: Option<&IoWaitSink>,
    less: F,
) -> Result<ExtVec<R>>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    assert!(!runs.is_empty(), "nothing to merge");
    let device = runs[0].device().clone();
    let b = runs[0].per_block();
    let k = runs.len();
    let _charge = budget.charge((k + 1) * b);

    let use_forecast =
        forecast && ov.read_ahead > 0 && k >= 2 && runs.iter().all(|r| r.has_block_heads());
    let fc = use_forecast.then(|| Forecaster::new(budget, k, ov.read_ahead, b, device.lanes()));

    let mut readers: Vec<ExtVecReader<R>> = match &fc {
        Some(fc) => runs
            .iter()
            .map(|r| r.reader_forecast(0, fc.pool()))
            .collect(),
        None => runs
            .iter()
            .map(|r| r.reader_at_prefetch(0, ov.read_ahead, budget))
            .collect(),
    };
    if let Some(sink) = io_wait {
        for rd in &mut readers {
            rd.set_io_wait_sink(sink.clone());
        }
    }
    if let Some(fc) = &fc {
        fc.pump(&mut readers, less);
    }

    // Write-behind depth is per disk: the output stream round-robins its
    // blocks across an independent array's lanes, so its queue deepens by
    // the lane count to keep all D output queues nonempty.  Under
    // forecasting it deepens further, to the read pool's size: each output
    // write retires behind the ~pool-deep prefetch queue in its lane, so a
    // shallow writer would stall on every block flush waiting out that
    // latency — mirroring the pool gives the writer exactly enough slack to
    // ride it out.  Like the pool itself this is budget headroom via
    // `try_charge`; it degrades gracefully and never changes a transfer.
    let wb = (ov.write_behind * device.stream_lanes()).max(fc.as_ref().map_or(0, |f| f.pool()));
    let mut w = ExtVecWriter::with_write_behind(device, wb, budget);
    if let Some(sink) = io_wait {
        w.set_io_wait_sink(sink.clone());
    }

    // Loser tree wins from k = 3 up (at k ≤ 2 the tree is the comparison).
    let use_tree = match kernel {
        MergeKernel::LoserTree => true,
        MergeKernel::Heap => false,
        MergeKernel::Auto => k >= 3,
    };

    // Re-pump the forecaster roughly once per emitted block; exact cadence
    // is irrelevant for correctness (a missed pump is just a demand read).
    let mut since_pump = 0usize;
    macro_rules! tick {
        () => {
            since_pump += 1;
            if since_pump >= b {
                since_pump = 0;
                if let Some(fc) = &fc {
                    fc.pump(&mut readers, less);
                }
            }
        };
    }

    if use_tree {
        let keys: Vec<Option<R>> = readers
            .iter_mut()
            .map(|rd| rd.try_next())
            .collect::<Result<_>>()?;
        let mut lt = LoserTree::new(keys, less);
        while let Some(wi) = lt.winner() {
            // Clone the challenger key so the tree is free to mutate while
            // we drain against it (one O(1) clone per winner switch).
            let challenger = lt.challenger().map(|(ci, ck)| (ci, ck.clone()));
            match challenger {
                None => {
                    // Sole surviving run: stream it straight to the writer.
                    w.push(lt.replace_winner(None))?;
                    while let Some(r) = readers[wi].try_next()? {
                        w.push(r)?;
                        tick!();
                    }
                }
                Some((ci, ck)) => {
                    // Drain run `wi` with one comparison per record until a
                    // record loses to the challenger (then one tree pass).
                    loop {
                        match readers[wi].try_next()? {
                            Some(n) => {
                                let still_wins = if wi < ci {
                                    !less(&ck, &n)
                                } else {
                                    less(&n, &ck)
                                };
                                if still_wins {
                                    w.push(lt.swap_winner(n))?;
                                } else {
                                    w.push(lt.replace_winner(Some(n)))?;
                                    break;
                                }
                            }
                            None => {
                                w.push(lt.replace_winner(None))?;
                                break;
                            }
                        }
                        tick!();
                    }
                }
            }
        }
    } else {
        // Heap of (record, reader index); ties broken by reader index so the
        // merge is stable across runs — the same order the loser tree
        // produces, which the kernel-equivalence tests assert.
        let mut heap: MinHeap<(R, usize), _> =
            MinHeap::with_capacity(k, move |a: &(R, usize), b: &(R, usize)| {
                less(&a.0, &b.0) || (!less(&b.0, &a.0) && a.1 < b.1)
            });
        for (i, rd) in readers.iter_mut().enumerate() {
            if let Some(r) = rd.try_next()? {
                heap.push((r, i));
            }
        }
        while let Some(e) = heap.peek() {
            let i = e.1;
            let rec = match readers[i].try_next()? {
                Some(next) => heap.replace_min((next, i)).0,
                None => heap.pop().expect("nonempty").0,
            };
            w.push(rec)?;
            tick!();
        }
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunFormation;
    use em_core::{bounds, EmConfig};
    use rand::prelude::*;

    fn device_b8() -> pdm::SharedDevice {
        EmConfig::new(64, 8).ram_disk() // B = 8 u64 records per block
    }

    fn random_input(device: &pdm::SharedDevice, n: u64, seed: u64) -> (ExtVec<u64>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        (ExtVec::from_slice(device.clone(), &data).unwrap(), data)
    }

    #[test]
    fn sorts_random_input() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 5000, 1);
        let out = merge_sort(&input, &SortConfig::new(64)).unwrap();
        data.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), data);
    }

    #[test]
    fn sorts_with_replacement_selection() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 5000, 2);
        let cfg = SortConfig::new(64).with_run_formation(RunFormation::ReplacementSelection);
        let out = merge_sort(&input, &cfg).unwrap();
        data.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), data);
    }

    #[test]
    fn already_sorted_and_reverse_inputs() {
        let device = device_b8();
        for data in [
            (0u64..1000).collect::<Vec<_>>(),
            (0u64..1000).rev().collect(),
        ] {
            let input = ExtVec::from_slice(device.clone(), &data).unwrap();
            let out = merge_sort(&input, &SortConfig::new(64)).unwrap();
            let mut expect = data.clone();
            expect.sort_unstable();
            assert_eq!(out.to_vec().unwrap(), expect);
        }
    }

    #[test]
    fn duplicate_heavy_input() {
        let device = device_b8();
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<u64> = (0..3000).map(|_| rng.gen_range(0..4)).collect();
        let input = ExtVec::from_slice(device, &data).unwrap();
        let out = merge_sort(&input, &SortConfig::new(48)).unwrap();
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), expect);
    }

    #[test]
    fn small_inputs() {
        let device = device_b8();
        for n in [0u64, 1, 2, 7, 8, 9] {
            let data: Vec<u64> = (0..n).rev().collect();
            let input = ExtVec::from_slice(device.clone(), &data).unwrap();
            let out = merge_sort(&input, &SortConfig::new(32)).unwrap();
            let mut expect = data.clone();
            expect.sort_unstable();
            assert_eq!(out.to_vec().unwrap(), expect, "n={n}");
        }
    }

    #[test]
    fn custom_comparator_sorts_descending() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 500, 4);
        let out = merge_sort_by(&input, &SortConfig::new(64), |a, b| a > b).unwrap();
        data.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(out.to_vec().unwrap(), data);
    }

    #[test]
    fn io_matches_pass_prediction() {
        let device = device_b8();
        let b = 8usize;
        let m = 64usize; // m/B = 8 blocks → fan-in 7
        let n = 10_000u64;
        let (input, _) = random_input(&device, n, 5);
        let before = device.stats().snapshot();
        let out = merge_sort(&input, &SortConfig::new(m)).unwrap();
        let d = device.stats().snapshot().since(&before);
        let k = SortConfig::new(m).effective_fan_in(b);
        let predicted = bounds::merge_sort_ios(n, m, b, k);
        let measured = d.total() as f64;
        // Partial run blocks add a little slack; stay within 10%.
        assert!(
            (measured - predicted).abs() / predicted < 0.10,
            "measured {measured} vs predicted {predicted}"
        );
        assert_eq!(out.len(), n);
    }

    #[test]
    fn fan_in_override_adds_passes() {
        let device = device_b8();
        let (input, _) = random_input(&device, 4096, 6);
        let m = 64;
        let wide = {
            let before = device.stats().snapshot();
            merge_sort(&input, &SortConfig::new(m)).unwrap();
            device.stats().snapshot().since(&before).total()
        };
        let narrow = {
            let before = device.stats().snapshot();
            merge_sort(&input, &SortConfig::new(m).with_fan_in(2)).unwrap();
            device.stats().snapshot().since(&before).total()
        };
        assert!(
            narrow as f64 > wide as f64 * 1.5,
            "binary merging should need clearly more I/Os: narrow={narrow} wide={wide}"
        );
    }

    #[test]
    fn intermediate_runs_are_freed() {
        let device = device_b8();
        let (input, _) = random_input(&device, 4096, 7);
        let blocks_before = device.allocated_blocks();
        let out = merge_sort(&input, &SortConfig::new(64).with_fan_in(2)).unwrap();
        let blocks_after = device.allocated_blocks();
        // Only the output should remain beyond the input.
        assert_eq!(blocks_after - blocks_before, out.num_blocks() as u64);
    }

    #[test]
    fn sorts_tuples_by_key() {
        let device = EmConfig::new(64, 8).ram_disk();
        let mut rng = StdRng::seed_from_u64(8);
        let data: Vec<(u64, u64)> = (0..1000u64)
            .map(|i| (rng.gen_range(0..100u64), i))
            .collect();
        let input = ExtVec::from_slice(device, &data).unwrap();
        let out = merge_sort_by(&input, &SortConfig::new(64), |a, b| a.0 < b.0).unwrap();
        let v = out.to_vec().unwrap();
        assert!(v.windows(2).all(|w| w[0].0 <= w[1].0));
        let mut expect = data;
        expect.sort_by_key(|p| p.0);
        let mut got = v;
        got.sort_by_key(|p| p.0); // same multiset check irrespective of tie order
        expect.sort_by_key(|p| (p.0, p.1));
        got.sort_by_key(|p| (p.0, p.1));
        assert_eq!(got, expect);
    }

    #[test]
    fn kernels_produce_identical_output_and_counts() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 6000, 9);
        data.sort_unstable();
        let mut baseline: Option<(Vec<u64>, u64, u64)> = None;
        for kernel in [MergeKernel::Heap, MergeKernel::LoserTree, MergeKernel::Auto] {
            let before = device.stats().snapshot();
            let out = merge_sort(&input, &SortConfig::new(64).with_merge_kernel(kernel)).unwrap();
            let d = device.stats().snapshot().since(&before);
            let got = (out.to_vec().unwrap(), d.reads(), d.writes());
            assert_eq!(got.0, data, "{kernel:?} output");
            match &baseline {
                None => baseline = Some(got),
                Some(b) => {
                    assert_eq!(&got.1, &b.1, "{kernel:?} reads");
                    assert_eq!(&got.2, &b.2, "{kernel:?} writes");
                }
            }
            out.free().unwrap();
        }
    }

    #[test]
    fn stability_identical_across_kernels() {
        // Key-only comparator on (key, payload) pairs: equal keys must come
        // out in identical (run-index) order from both kernels.
        let device = EmConfig::new(64, 8).ram_disk();
        let mut rng = StdRng::seed_from_u64(10);
        let data: Vec<(u64, u64)> = (0..2000u64).map(|i| (rng.gen_range(0..8u64), i)).collect();
        let input = ExtVec::from_slice(device, &data).unwrap();
        let heap = merge_sort_by(
            &input,
            &SortConfig::new(64).with_merge_kernel(MergeKernel::Heap),
            |a, b| a.0 < b.0,
        )
        .unwrap();
        let tree = merge_sort_by(
            &input,
            &SortConfig::new(64).with_merge_kernel(MergeKernel::LoserTree),
            |a, b| a.0 < b.0,
        )
        .unwrap();
        assert_eq!(heap.to_vec().unwrap(), tree.to_vec().unwrap());
    }

    #[test]
    fn forecast_counters_light_up_with_overlap() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 4000, 11);
        let cfg = SortConfig::new(64).with_overlap(OverlapConfig::symmetric(2));
        let before = device.stats().snapshot();
        let out = merge_sort(&input, &cfg).unwrap();
        let d = device.stats().snapshot().since(&before);
        data.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), data);
        assert!(
            d.forecast_issued() > 0,
            "forecasting should drive the merge prefetches"
        );
        assert_eq!(
            d.forecast_hits(),
            d.forecast_issued(),
            "every forecast block is consumed"
        );
        assert_eq!(d.prefetch_wasted(), 0);
    }

    #[test]
    fn forecast_off_still_sorts_with_identical_counts() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 4000, 12);
        let base = SortConfig::new(64).with_overlap(OverlapConfig::symmetric(2));
        let before = device.stats().snapshot();
        let with_fc = merge_sort(&input, &base).unwrap();
        let mid = device.stats().snapshot();
        let without = merge_sort(&input, &base.with_forecast(false)).unwrap();
        let after = device.stats().snapshot();
        data.sort_unstable();
        assert_eq!(with_fc.to_vec().unwrap(), data);
        assert_eq!(without.to_vec().unwrap(), data);
        let (d1, d2) = (mid.since(&before), after.since(&mid));
        assert_eq!(d1.reads(), d2.reads());
        assert_eq!(d1.writes(), d2.writes());
        assert_eq!(d2.forecast_issued(), 0, "forecast off issues nothing");
    }

    #[test]
    fn metrics_report_phases() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 5000, 13);
        let (out, m) = merge_sort_with_metrics(&input, &SortConfig::new(64), |a, b| a < b).unwrap();
        data.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), data);
        assert!(m.run_formation_secs > 0.0);
        assert!(m.merge_secs > 0.0);
        assert!(m.merge_passes >= 1, "5000 records at M=64 need merging");
        assert!(m.run_formation_io_wait_secs >= 0.0 && m.merge_io_wait_secs >= 0.0);
        assert!(m.run_formation_io_wait_secs <= m.run_formation_secs);
        assert!(m.merge_io_wait_secs <= m.merge_secs);
    }

    #[test]
    fn merge_runs_with_respects_config() {
        let device = device_b8();
        let runs: Vec<ExtVec<u64>> = (0..4u64)
            .map(|i| {
                let data: Vec<u64> = (0..100).map(|j| j * 4 + i).collect();
                ExtVec::from_slice(device.clone(), &data).unwrap()
            })
            .collect();
        let cfg = SortConfig::new(64).with_overlap(OverlapConfig::symmetric(2));
        let budget = MemBudget::new(64 + 4 * 2 * 8 + 2 * 8);
        let out = merge_runs_with(&runs, &budget, &cfg, |a, b| a < b).unwrap();
        assert_eq!(out.to_vec().unwrap(), (0..400).collect::<Vec<u64>>());
    }
}

#[cfg(test)]
mod multi_disk_tests {
    use super::*;
    use crate::SortConfig;
    use pdm::{BlockDevice, DiskArray, FileDisk, Placement, SharedDevice};
    use rand::prelude::*;

    fn random_input(device: &SharedDevice, n: u64, seed: u64) -> (ExtVec<u64>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        (ExtVec::from_slice(device.clone(), &data).unwrap(), data)
    }

    #[test]
    fn sorts_on_striped_array() {
        let arr = DiskArray::new_ram(4, 64, Placement::Striped);
        let device = arr.clone() as SharedDevice;
        assert_eq!(device.block_size(), 256);
        let (input, mut data) = random_input(&device, 5000, 21);
        let out = merge_sort(&input, &SortConfig::new(512)).unwrap();
        data.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), data);
        // Striping: every disk carries the same transfer count.
        let snap = device.stats().snapshot();
        for d in 1..4 {
            assert_eq!(snap.reads_on(0), snap.reads_on(d));
            assert_eq!(snap.writes_on(0), snap.writes_on(d));
        }
        assert_eq!(snap.parallel_time() * 4, snap.total());
    }

    #[test]
    fn sorts_on_independent_array_with_balanced_load() {
        let arr = DiskArray::new_ram(4, 64, Placement::Independent);
        let device = arr.clone() as SharedDevice;
        assert_eq!(device.block_size(), 64);
        let (input, mut data) = random_input(&device, 5000, 22);
        let out = merge_sort(&input, &SortConfig::new(512)).unwrap();
        data.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), data);
        // Round-robin placement keeps the disks within ~25% of each other.
        let snap = device.stats().snapshot();
        let per: Vec<u64> = (0..4)
            .map(|d| snap.reads_on(d) + snap.writes_on(d))
            .collect();
        let (lo, hi) = (per.iter().min().unwrap(), per.iter().max().unwrap());
        assert!(*hi as f64 <= 1.25 * *lo as f64, "imbalanced: {per:?}");
        assert!(
            snap.parallel_time() <= snap.total() / 3,
            "no parallel speedup: {per:?}"
        );
    }

    #[test]
    fn sorts_on_file_disk() {
        let mut path = std::env::temp_dir();
        path.push(format!("emsort-file-{}.bin", std::process::id()));
        let device = FileDisk::create(&path, 512).unwrap() as SharedDevice;
        let (input, mut data) = random_input(&device, 20_000, 23);
        let out = merge_sort(&input, &SortConfig::new(1024)).unwrap();
        data.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), data);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn overlapped_pipeline_matches_sync_output_and_per_disk_counts() {
        // The tentpole invariant: switching on worker threads, read-ahead,
        // write-behind and forecasting moves wall-clock time only — every
        // disk performs exactly the transfers of the synchronous pipeline.
        use crate::OverlapConfig;
        use pdm::IoMode;
        for placement in [Placement::Striped, Placement::Independent] {
            let d = 4;
            let sync_dev = DiskArray::new_ram(d, 64, placement) as SharedDevice;
            let ov_dev =
                DiskArray::new_ram_with(d, 64, placement, IoMode::Overlapped) as SharedDevice;
            let (sync_in, _) = random_input(&sync_dev, 5000, 31);
            let (ov_in, mut data) = random_input(&ov_dev, 5000, 31);
            let sync_cfg = SortConfig::new(512).with_overlap(OverlapConfig::off());
            let ov_cfg = SortConfig::new(512).with_overlap(OverlapConfig::symmetric(2));
            let before_sync = sync_dev.stats().snapshot();
            let before_ov = ov_dev.stats().snapshot();
            let sync_out = merge_sort(&sync_in, &sync_cfg).unwrap();
            let ov_out = merge_sort(&ov_in, &ov_cfg).unwrap();
            data.sort_unstable();
            assert_eq!(sync_out.to_vec().unwrap(), data);
            assert_eq!(ov_out.to_vec().unwrap(), data, "{placement:?}");
            let ds = sync_dev.stats().snapshot().since(&before_sync);
            let dov = ov_dev.stats().snapshot().since(&before_ov);
            for lane in 0..d {
                assert_eq!(
                    ds.reads_on(lane),
                    dov.reads_on(lane),
                    "{placement:?} lane {lane}"
                );
                assert_eq!(
                    ds.writes_on(lane),
                    dov.writes_on(lane),
                    "{placement:?} lane {lane}"
                );
            }
            assert_eq!(ds.parallel_time(), dov.parallel_time());
            assert_eq!(
                dov.prefetch_wasted(),
                0,
                "sort consumes every prefetched block"
            );
            assert!(
                dov.forecast_issued() > 0,
                "{placement:?}: forecasting active"
            );
        }
    }

    #[test]
    fn striped_fan_in_is_reduced() {
        // The model-level mechanism behind experiment F5: same memory in
        // bytes, but the striped logical block is D times bigger, so the
        // fan-in drops by D.
        let mem_bytes = 64 * 64; // 64 physical blocks' worth
        let striped = DiskArray::new_ram(8, 64, Placement::Striped);
        let indep = DiskArray::new_ram(8, 64, Placement::Independent);
        let m_records = mem_bytes / 8;
        let sc = SortConfig::new(m_records);
        let fan_striped = sc.effective_fan_in(striped.block_size() / 8);
        let fan_indep = sc.effective_fan_in(indep.block_size() / 8);
        assert_eq!(fan_indep, 63);
        assert_eq!(fan_striped, 7);
    }
}
