//! Multiway merge sort.
//!
//! The survey's optimal sorting algorithm: form sorted runs, then repeatedly
//! merge up to `k = Θ(M/B)` runs at a time until one remains.  With fan-in
//! `k = M/B − 1` (one memory block buffers each input run, one buffers the
//! output), `⌈N/M⌉` initial runs shrink by a factor `k` per pass, giving
//!
//! ```text
//! I/Os = 2·(N/B) · (1 + ⌈log_k ⌈N/M⌉⌉)  =  Θ((N/B) · log_{M/B}(N/B))
//! ```
//!
//! which matches the lower bound — the headline result the experiment
//! harness (F1/F2) verifies against [`em_core::bounds::merge_sort_ios`].

use std::collections::VecDeque;

use em_core::{ExtVec, ExtVecReader, ExtVecWriter, MemBudget, Record};
use pdm::Result;

use crate::heap::MinHeap;
use crate::runs::form_runs;
use crate::{OverlapConfig, SortConfig};

/// Sort `input` into a new external array on the same device, using natural
/// ordering.  See [`merge_sort_by`].
///
/// ```
/// use em_core::{EmConfig, ExtVec};
/// use emsort::{merge_sort, SortConfig};
///
/// let cfg = EmConfig::new(512, 8);
/// let device = cfg.ram_disk();
/// let input = ExtVec::from_slice(device, &[5u64, 1, 4, 2, 3])?;
/// let sorted = merge_sort(&input, &SortConfig::new(cfg.mem_records::<u64>()))?;
/// assert_eq!(sorted.to_vec()?, vec![1, 2, 3, 4, 5]);
/// # Ok::<(), pdm::PdmError>(())
/// ```
pub fn merge_sort<R: Record + Ord>(input: &ExtVec<R>, cfg: &SortConfig) -> Result<ExtVec<R>> {
    merge_sort_by(input, cfg, |a, b| a < b)
}

/// Sort `input` by a strict-less predicate.
///
/// Intermediate runs are freed as they are consumed, so peak disk usage is
/// `≈ 2N/B` blocks beyond the input.  The input itself is left untouched.
pub fn merge_sort_by<R, F>(input: &ExtVec<R>, cfg: &SortConfig, less: F) -> Result<ExtVec<R>>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    if input.is_empty() {
        return Ok(ExtVec::new(input.device().clone()));
    }
    let k = cfg.effective_fan_in(input.per_block());
    let ov = cfg.overlap;
    // Overlap headroom beyond M: read-ahead for each of the k input runs
    // plus write-behind for the one output stream.  Fan-in and run sizes are
    // computed from `mem_records` alone, so counts match the sync pipeline.
    let reserve = (k * ov.read_ahead + ov.write_behind) * input.per_block();
    let budget = MemBudget::new(cfg.mem_records + reserve);

    let mut queue: VecDeque<ExtVec<R>> = form_runs(input, cfg, less)?.into();
    while queue.len() > 1 {
        let take = k.min(queue.len());
        let group: Vec<ExtVec<R>> = queue.drain(..take).collect();
        let merged = merge_runs_inner(&group, &budget, ov, less)?;
        for run in group {
            run.free()?;
        }
        queue.push_back(merged);
    }
    Ok(queue.pop_front().expect("nonempty input yields a run"))
}

/// Merge already-sorted `runs` into one sorted array, charging
/// `(k+1)·B` records against `budget`.
///
/// Exposed because other crates reuse single merges (e.g. merging delta runs
/// in graph pipelines).  Costs one read of every input block and one write
/// of every output block.
pub fn merge_runs_by<R, F>(runs: &[ExtVec<R>], budget: &std::sync::Arc<MemBudget>, less: F) -> Result<ExtVec<R>>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    merge_runs_inner(runs, budget, OverlapConfig::off(), less)
}

/// One k-way merge with optional read-ahead on each run and write-behind on
/// the output.  The overlap buffers come from `budget` headroom via
/// `try_charge`, so a tight budget silently degrades to the synchronous
/// merge; the transfers performed are identical either way.
fn merge_runs_inner<R, F>(
    runs: &[ExtVec<R>],
    budget: &std::sync::Arc<MemBudget>,
    ov: OverlapConfig,
    less: F,
) -> Result<ExtVec<R>>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    assert!(!runs.is_empty(), "nothing to merge");
    let device = runs[0].device().clone();
    let b = runs[0].per_block();
    let _charge = budget.charge((runs.len() + 1) * b);

    let mut readers: Vec<ExtVecReader<R>> =
        runs.iter().map(|r| r.reader_at_prefetch(0, ov.read_ahead, budget)).collect();
    // Heap of (record, reader index); ties broken by reader index so the
    // merge is stable across runs.
    let mut heap: MinHeap<(R, usize), _> = MinHeap::with_capacity(runs.len(), move |a: &(R, usize), b: &(R, usize)| {
        less(&a.0, &b.0) || (!less(&b.0, &a.0) && a.1 < b.1)
    });
    for (i, rd) in readers.iter_mut().enumerate() {
        if let Some(r) = rd.try_next()? {
            heap.push((r, i));
        }
    }
    let mut w = ExtVecWriter::with_write_behind(device, ov.write_behind, budget);
    while let Some((rec, i)) = heap.pop() {
        w.push(rec)?;
        if let Some(next) = readers[i].try_next()? {
            heap.push((next, i));
        }
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunFormation;
    use em_core::{bounds, EmConfig};
    use rand::prelude::*;

    fn device_b8() -> pdm::SharedDevice {
        EmConfig::new(64, 8).ram_disk() // B = 8 u64 records per block
    }

    fn random_input(device: &pdm::SharedDevice, n: u64, seed: u64) -> (ExtVec<u64>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        (ExtVec::from_slice(device.clone(), &data).unwrap(), data)
    }

    #[test]
    fn sorts_random_input() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 5000, 1);
        let out = merge_sort(&input, &SortConfig::new(64)).unwrap();
        data.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), data);
    }

    #[test]
    fn sorts_with_replacement_selection() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 5000, 2);
        let cfg = SortConfig::new(64).with_run_formation(RunFormation::ReplacementSelection);
        let out = merge_sort(&input, &cfg).unwrap();
        data.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), data);
    }

    #[test]
    fn already_sorted_and_reverse_inputs() {
        let device = device_b8();
        for data in [(0u64..1000).collect::<Vec<_>>(), (0u64..1000).rev().collect()] {
            let input = ExtVec::from_slice(device.clone(), &data).unwrap();
            let out = merge_sort(&input, &SortConfig::new(64)).unwrap();
            let mut expect = data.clone();
            expect.sort_unstable();
            assert_eq!(out.to_vec().unwrap(), expect);
        }
    }

    #[test]
    fn duplicate_heavy_input() {
        let device = device_b8();
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<u64> = (0..3000).map(|_| rng.gen_range(0..4)).collect();
        let input = ExtVec::from_slice(device, &data).unwrap();
        let out = merge_sort(&input, &SortConfig::new(48)).unwrap();
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), expect);
    }

    #[test]
    fn small_inputs() {
        let device = device_b8();
        for n in [0u64, 1, 2, 7, 8, 9] {
            let data: Vec<u64> = (0..n).rev().collect();
            let input = ExtVec::from_slice(device.clone(), &data).unwrap();
            let out = merge_sort(&input, &SortConfig::new(32)).unwrap();
            let mut expect = data.clone();
            expect.sort_unstable();
            assert_eq!(out.to_vec().unwrap(), expect, "n={n}");
        }
    }

    #[test]
    fn custom_comparator_sorts_descending() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 500, 4);
        let out = merge_sort_by(&input, &SortConfig::new(64), |a, b| a > b).unwrap();
        data.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(out.to_vec().unwrap(), data);
    }

    #[test]
    fn io_matches_pass_prediction() {
        let device = device_b8();
        let b = 8usize;
        let m = 64usize; // m/B = 8 blocks → fan-in 7
        let n = 10_000u64;
        let (input, _) = random_input(&device, n, 5);
        let before = device.stats().snapshot();
        let out = merge_sort(&input, &SortConfig::new(m)).unwrap();
        let d = device.stats().snapshot().since(&before);
        let k = SortConfig::new(m).effective_fan_in(b);
        let predicted = bounds::merge_sort_ios(n, m, b, k);
        let measured = d.total() as f64;
        // Partial run blocks add a little slack; stay within 10%.
        assert!(
            (measured - predicted).abs() / predicted < 0.10,
            "measured {measured} vs predicted {predicted}"
        );
        assert_eq!(out.len(), n);
    }

    #[test]
    fn fan_in_override_adds_passes() {
        let device = device_b8();
        let (input, _) = random_input(&device, 4096, 6);
        let m = 64;
        let wide = {
            let before = device.stats().snapshot();
            merge_sort(&input, &SortConfig::new(m)).unwrap();
            device.stats().snapshot().since(&before).total()
        };
        let narrow = {
            let before = device.stats().snapshot();
            merge_sort(&input, &SortConfig::new(m).with_fan_in(2)).unwrap();
            device.stats().snapshot().since(&before).total()
        };
        assert!(
            narrow as f64 > wide as f64 * 1.5,
            "binary merging should need clearly more I/Os: narrow={narrow} wide={wide}"
        );
    }

    #[test]
    fn intermediate_runs_are_freed() {
        let device = device_b8();
        let (input, _) = random_input(&device, 4096, 7);
        let blocks_before = device.allocated_blocks();
        let out = merge_sort(&input, &SortConfig::new(64).with_fan_in(2)).unwrap();
        let blocks_after = device.allocated_blocks();
        // Only the output should remain beyond the input.
        assert_eq!(blocks_after - blocks_before, out.num_blocks() as u64);
    }

    #[test]
    fn sorts_tuples_by_key() {
        let device = EmConfig::new(64, 8).ram_disk();
        let mut rng = StdRng::seed_from_u64(8);
        let data: Vec<(u64, u64)> = (0..1000u64).map(|i| (rng.gen_range(0..100u64), i)).collect();
        let input = ExtVec::from_slice(device, &data).unwrap();
        let out =
            merge_sort_by(&input, &SortConfig::new(64), |a, b| a.0 < b.0).unwrap();
        let v = out.to_vec().unwrap();
        assert!(v.windows(2).all(|w| w[0].0 <= w[1].0));
        let mut expect = data;
        expect.sort_by_key(|p| p.0);
        let mut got = v;
        got.sort_by_key(|p| p.0); // same multiset check irrespective of tie order
        expect.sort_by_key(|p| (p.0, p.1));
        got.sort_by_key(|p| (p.0, p.1));
        assert_eq!(got, expect);
    }
}

#[cfg(test)]
mod multi_disk_tests {
    use super::*;
    use crate::SortConfig;
    use pdm::{BlockDevice, DiskArray, FileDisk, Placement, SharedDevice};
    use rand::prelude::*;

    fn random_input(device: &SharedDevice, n: u64, seed: u64) -> (ExtVec<u64>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        (ExtVec::from_slice(device.clone(), &data).unwrap(), data)
    }

    #[test]
    fn sorts_on_striped_array() {
        let arr = DiskArray::new_ram(4, 64, Placement::Striped);
        let device = arr.clone() as SharedDevice;
        assert_eq!(device.block_size(), 256);
        let (input, mut data) = random_input(&device, 5000, 21);
        let out = merge_sort(&input, &SortConfig::new(512)).unwrap();
        data.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), data);
        // Striping: every disk carries the same transfer count.
        let snap = device.stats().snapshot();
        for d in 1..4 {
            assert_eq!(snap.reads_on(0), snap.reads_on(d));
            assert_eq!(snap.writes_on(0), snap.writes_on(d));
        }
        assert_eq!(snap.parallel_time() * 4, snap.total());
    }

    #[test]
    fn sorts_on_independent_array_with_balanced_load() {
        let arr = DiskArray::new_ram(4, 64, Placement::Independent);
        let device = arr.clone() as SharedDevice;
        assert_eq!(device.block_size(), 64);
        let (input, mut data) = random_input(&device, 5000, 22);
        let out = merge_sort(&input, &SortConfig::new(512)).unwrap();
        data.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), data);
        // Round-robin placement keeps the disks within ~25% of each other.
        let snap = device.stats().snapshot();
        let per: Vec<u64> = (0..4).map(|d| snap.reads_on(d) + snap.writes_on(d)).collect();
        let (lo, hi) = (per.iter().min().unwrap(), per.iter().max().unwrap());
        assert!(*hi as f64 <= 1.25 * *lo as f64, "imbalanced: {per:?}");
        assert!(snap.parallel_time() <= snap.total() / 3, "no parallel speedup: {per:?}");
    }

    #[test]
    fn sorts_on_file_disk() {
        let mut path = std::env::temp_dir();
        path.push(format!("emsort-file-{}.bin", std::process::id()));
        let device = FileDisk::create(&path, 512).unwrap() as SharedDevice;
        let (input, mut data) = random_input(&device, 20_000, 23);
        let out = merge_sort(&input, &SortConfig::new(1024)).unwrap();
        data.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), data);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn overlapped_pipeline_matches_sync_output_and_per_disk_counts() {
        // The tentpole invariant: switching on worker threads, read-ahead and
        // write-behind moves wall-clock time only — every disk performs
        // exactly the transfers of the synchronous pipeline.
        use crate::OverlapConfig;
        use pdm::IoMode;
        for placement in [Placement::Striped, Placement::Independent] {
            let d = 4;
            let sync_dev = DiskArray::new_ram(d, 64, placement) as SharedDevice;
            let ov_dev =
                DiskArray::new_ram_with(d, 64, placement, IoMode::Overlapped) as SharedDevice;
            let (sync_in, _) = random_input(&sync_dev, 5000, 31);
            let (ov_in, mut data) = random_input(&ov_dev, 5000, 31);
            let sync_cfg = SortConfig::new(512).with_overlap(OverlapConfig::off());
            let ov_cfg = SortConfig::new(512).with_overlap(OverlapConfig::symmetric(2));
            let before_sync = sync_dev.stats().snapshot();
            let before_ov = ov_dev.stats().snapshot();
            let sync_out = merge_sort(&sync_in, &sync_cfg).unwrap();
            let ov_out = merge_sort(&ov_in, &ov_cfg).unwrap();
            data.sort_unstable();
            assert_eq!(sync_out.to_vec().unwrap(), data);
            assert_eq!(ov_out.to_vec().unwrap(), data, "{placement:?}");
            let ds = sync_dev.stats().snapshot().since(&before_sync);
            let dov = ov_dev.stats().snapshot().since(&before_ov);
            for lane in 0..d {
                assert_eq!(ds.reads_on(lane), dov.reads_on(lane), "{placement:?} lane {lane}");
                assert_eq!(ds.writes_on(lane), dov.writes_on(lane), "{placement:?} lane {lane}");
            }
            assert_eq!(ds.parallel_time(), dov.parallel_time());
            assert_eq!(dov.prefetch_wasted(), 0, "sort consumes every prefetched block");
        }
    }

    #[test]
    fn striped_fan_in_is_reduced() {
        // The model-level mechanism behind experiment F5: same memory in
        // bytes, but the striped logical block is D times bigger, so the
        // fan-in drops by D.
        let mem_bytes = 64 * 64; // 64 physical blocks' worth
        let striped = DiskArray::new_ram(8, 64, Placement::Striped);
        let indep = DiskArray::new_ram(8, 64, Placement::Independent);
        let m_records = mem_bytes / 8;
        let sc = SortConfig::new(m_records);
        let fan_striped = sc.effective_fan_in(striped.block_size() / 8);
        let fan_indep = sc.effective_fan_in(indep.block_size() / 8);
        assert_eq!(fan_indep, 63);
        assert_eq!(fan_striped, 7);
    }
}
