//! Multiway merge sort.
//!
//! The survey's optimal sorting algorithm: form sorted runs, then repeatedly
//! merge up to `k = Θ(M/B)` runs at a time until one remains.  With fan-in
//! `k = M/B − 1` (one memory block buffers each input run, one buffers the
//! output), `⌈N/M⌉` initial runs shrink by a factor `k` per pass, giving
//!
//! ```text
//! I/Os = 2·(N/B) · (1 + ⌈log_k ⌈N/M⌉⌉)  =  Θ((N/B) · log_{M/B}(N/B))
//! ```
//!
//! which matches the lower bound — the headline result the experiment
//! harness (F1/F2) verifies against [`em_core::bounds::merge_sort_ios`].
//!
//! The compute side of the merge is a [loser tree](crate::losertree) —
//! `⌈log₂ k⌉` comparisons per record with a block-drain fast path — with a
//! binary-heap kernel kept for tiny fan-ins and A/B experiments
//! ([`MergeKernel`]).  The I/O side is schedule by *forecasting*
//! ([`crate::forecast`]): each run's block-head keys decide which run's next
//! block is prefetched first.  Neither choice changes which transfers
//! happen — only when, and how much CPU sits between them.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use em_core::{BudgetGuard, ExtVec, ExtVecReader, ExtVecWriter, IoWaitSink, MemBudget, Record};
use pdm::{Result, SharedDevice};

use crate::forecast::Forecaster;
use crate::guidesort::GuideScheduler;
use crate::heap::MinHeap;
use crate::losertree::LoserTree;
use crate::runs::{form_runs_impl, write_sorted_chunk};
use crate::{MergeKernel, OverlapConfig, SortConfig};

/// Sort `input` into a new external array on the same device, using natural
/// ordering.  See [`merge_sort_by`].
///
/// ```
/// use em_core::{EmConfig, ExtVec};
/// use emsort::{merge_sort, SortConfig};
///
/// let cfg = EmConfig::new(512, 8);
/// let device = cfg.ram_disk();
/// let input = ExtVec::from_slice(device, &[5u64, 1, 4, 2, 3])?;
/// let sorted = merge_sort(&input, &SortConfig::new(cfg.mem_records::<u64>()))?;
/// assert_eq!(sorted.to_vec()?, vec![1, 2, 3, 4, 5]);
/// # Ok::<(), pdm::PdmError>(())
/// ```
pub fn merge_sort<R: Record + Ord>(input: &ExtVec<R>, cfg: &SortConfig) -> Result<ExtVec<R>> {
    merge_sort_by(input, cfg, |a, b| a < b)
}

/// Sort `input` by a strict-less predicate.
///
/// Intermediate runs are freed as they are consumed, so peak disk usage is
/// `≈ 2N/B` blocks beyond the input.  The input itself is left untouched.
pub fn merge_sort_by<R, F>(input: &ExtVec<R>, cfg: &SortConfig, less: F) -> Result<ExtVec<R>>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy + Send,
{
    merge_sort_impl(input, cfg, less, false).map(|(out, _)| out)
}

/// Wall-clock and I/O-wait breakdown of one sort, phase by phase.
///
/// `*_secs` are wall-clock; `*_io_wait_secs` are the portions of those spent
/// blocked on device transfers (everything else is CPU: sorting chunks,
/// running the merge kernel).  A sort is compute-bound in a phase when its
/// I/O wait is a small fraction of its wall time — the regime distinction
/// discussed in `DESIGN.md`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SortMetrics {
    /// Wall-clock seconds spent forming initial runs.
    pub run_formation_secs: f64,
    /// Seconds of `run_formation_secs` spent blocked on transfers.
    pub run_formation_io_wait_secs: f64,
    /// Wall-clock seconds spent in merge passes.
    pub merge_secs: f64,
    /// Seconds of `merge_secs` spent blocked on transfers.
    pub merge_io_wait_secs: f64,
    /// Number of merge levels (times the data is rewritten after run
    /// formation); 0 when run formation already yields a single run.
    pub merge_passes: u32,
}

/// [`merge_sort_by`] plus a per-phase [`SortMetrics`] breakdown.
///
/// The instrumentation wraps every blocking device wait in a timestamp pair;
/// the sort itself is bit-identical to the unmetered one.
pub fn merge_sort_with_metrics<R, F>(
    input: &ExtVec<R>,
    cfg: &SortConfig,
    less: F,
) -> Result<(ExtVec<R>, SortMetrics)>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy + Send,
{
    merge_sort_impl(input, cfg, less, true)
}

fn merge_sort_impl<R, F>(
    input: &ExtVec<R>,
    cfg: &SortConfig,
    less: F,
    timed: bool,
) -> Result<(ExtVec<R>, SortMetrics)>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy + Send,
{
    let mut metrics = SortMetrics::default();
    if input.is_empty() {
        return Ok((ExtVec::new(input.device().clone()), metrics));
    }
    let k = cfg.effective_fan_in(input.per_block());
    let ov = cfg.overlap;
    // Overlap headroom beyond M: read-ahead for each of the k input runs
    // plus write-behind for the one output stream — the writer's depth is
    // per disk, so on an independent array it scales by the lane count to
    // keep every disk's queue fed.  Fan-in and run sizes are computed from
    // `mem_records` alone, so counts match the sync pipeline.
    let lanes = input.device().stream_lanes();
    let wb = (ov.write_behind * lanes).max(if ov.read_ahead > 0 && cfg.forecast {
        k * ov.read_ahead
    } else {
        0
    });
    let reserve = (k * ov.read_ahead + wb) * input.per_block();
    let budget = MemBudget::new(cfg.mem_records + reserve);

    let nanos_of = |sink: &Option<IoWaitSink>| {
        sink.as_ref()
            .map_or(0.0, |s| s.load(Ordering::Relaxed) as f64 / 1e9)
    };

    let run_wait: Option<IoWaitSink> = timed.then(IoWaitSink::default);
    let t0 = Instant::now();
    let mut queue: VecDeque<ExtVec<R>> =
        form_runs_impl(input, cfg, less, run_wait.as_ref())?.into();
    metrics.run_formation_secs = t0.elapsed().as_secs_f64();
    metrics.run_formation_io_wait_secs = nanos_of(&run_wait);

    // Merge levels: ⌈log_k(initial runs)⌉.
    let mut remaining = queue.len();
    while remaining > 1 {
        remaining = remaining.div_ceil(k);
        metrics.merge_passes += 1;
    }

    let merge_wait: Option<IoWaitSink> = timed.then(IoWaitSink::default);
    let t1 = Instant::now();
    let mut merged_streams = 0usize;
    while queue.len() > 1 {
        let take = k.min(queue.len());
        let group: Vec<ExtVec<R>> = queue.drain(..take).collect();
        // Stagger each merge output's start lane the way run formation
        // staggers runs: in a multi-pass merge these streams are next-pass
        // runs, and unstaggered equal-length runs all place block j on the
        // same disk (see `BlockDevice::direct_next_stream`).
        group[0].device().direct_next_stream(merged_streams);
        merged_streams += 1;
        let merged = merge_runs_inner(
            &group,
            &budget,
            ov,
            cfg.kernel,
            cfg.forecast,
            merge_wait.as_ref(),
            less,
        )?;
        for run in group {
            run.free()?;
        }
        queue.push_back(merged);
    }
    metrics.merge_secs = t1.elapsed().as_secs_f64();
    metrics.merge_io_wait_secs = nanos_of(&merge_wait);
    // Nonempty input always leaves exactly one run; degrade to an empty
    // result rather than panic if that invariant ever breaks.
    match queue.pop_front() {
        Some(out) => Ok((out, metrics)),
        None => Ok((ExtVec::new(input.device().clone()), metrics)),
    }
}

/// Merge already-sorted `runs` into one sorted array, charging
/// `(k+1)·B` records against `budget`.
///
/// Exposed because other crates reuse single merges (e.g. merging delta runs
/// in graph pipelines).  Costs one read of every input block and one write
/// of every output block.  Runs synchronously with the default kernel; use
/// [`merge_runs_with`] to choose overlap, kernel, and forecasting.
pub fn merge_runs_by<R, F>(
    runs: &[ExtVec<R>],
    budget: &Arc<MemBudget>,
    less: F,
) -> Result<ExtVec<R>>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    merge_runs_inner(
        runs,
        budget,
        OverlapConfig::off(),
        MergeKernel::Auto,
        false,
        None,
        less,
    )
}

/// One k-way merge under `cfg`'s overlap, kernel, and forecasting choices.
///
/// Charges `(k+1)·B` records against `budget`, plus (when overlap is on)
/// whatever read-ahead pool the budget's headroom allows.  Like every
/// overlap feature in this workspace, kernel and forecasting choices move
/// wall-clock time only: the transfers performed are identical for every
/// combination.
pub fn merge_runs_with<R, F>(
    runs: &[ExtVec<R>],
    budget: &Arc<MemBudget>,
    cfg: &SortConfig,
    less: F,
) -> Result<ExtVec<R>>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    merge_runs_inner(
        runs,
        budget,
        cfg.overlap,
        cfg.kernel,
        cfg.forecast,
        None,
        less,
    )
}

/// The merge's prefetch scheduler: dynamic forecasting or a static guide
/// sequence ([`MergeKernel::Guided`]).  Both drive the same shared pool of
/// externally managed readers; they differ only in how the next block to
/// submit is chosen, never in which blocks are read.
enum Prefetcher {
    Forecast(Forecaster),
    Guide(GuideScheduler),
}

impl Prefetcher {
    /// Build the scheduler `kernel` and `forecast` call for, or `None` when
    /// prefetch scheduling cannot apply (no read-ahead, fewer than two runs,
    /// or missing block-head metadata).
    fn build<R, F>(
        parts: &[(&ExtVec<R>, u64)],
        budget: &Arc<MemBudget>,
        ov: OverlapConfig,
        kernel: MergeKernel,
        forecast: bool,
        less: F,
    ) -> Option<Self>
    where
        R: Record,
        F: Fn(&R, &R) -> bool + Copy,
    {
        let k = parts.len();
        let guided = kernel == MergeKernel::Guided;
        let eligible =
            ov.read_ahead > 0 && k >= 2 && parts.iter().all(|(r, _)| r.has_block_heads());
        if !eligible || (!forecast && !guided) {
            return None;
        }
        let b = parts.first().map_or(1, |(r, _)| r.per_block());
        Some(if guided {
            Prefetcher::Guide(GuideScheduler::new(budget, parts, ov.read_ahead, less))
        } else {
            let device = parts[0].0.device();
            Prefetcher::Forecast(Forecaster::new(budget, k, ov.read_ahead, b, device.lanes()))
        })
    }

    /// Blocks the scheduler's pool may keep in flight.
    fn pool(&self) -> usize {
        match self {
            Prefetcher::Forecast(fc) => fc.pool(),
            Prefetcher::Guide(g) => g.pool(),
        }
    }

    /// Top the pool up (scheduler-specific submission order).
    fn pump<R, F>(&self, readers: &mut [ExtVecReader<'_, R>], less: F)
    where
        R: Record,
        F: Fn(&R, &R) -> bool + Copy,
    {
        match self {
            Prefetcher::Forecast(fc) => fc.pump(readers, less),
            Prefetcher::Guide(g) => g.pump(readers),
        }
    }
}

/// One k-way merge with optional read-ahead on each run and write-behind on
/// the output.  The overlap buffers come from `budget` headroom via
/// `try_charge`, so a tight budget silently degrades to the synchronous
/// merge; the transfers performed are identical either way.
///
/// With `forecast` on (and read-ahead requested, and block-head metadata
/// present on every run), the per-run read-ahead buffers become one shared
/// pool scheduled by a [`Forecaster`]: the run whose next block has the
/// smallest leading key gets the next buffer.  With the
/// [`Guided`](MergeKernel::Guided) kernel the pool is instead scheduled by a
/// precomputed [`GuideScheduler`] sequence.
fn merge_runs_inner<R, F>(
    runs: &[ExtVec<R>],
    budget: &Arc<MemBudget>,
    ov: OverlapConfig,
    kernel: MergeKernel,
    forecast: bool,
    io_wait: Option<&IoWaitSink>,
    less: F,
) -> Result<ExtVec<R>>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    assert!(!runs.is_empty(), "nothing to merge");
    let device = runs[0].device().clone();
    let b = runs[0].per_block();
    let k = runs.len();
    let _charge = budget.charge((k + 1) * b);

    let parts: Vec<(&ExtVec<R>, u64)> = runs.iter().map(|r| (r, 0)).collect();
    let fc = Prefetcher::build(&parts, budget, ov, kernel, forecast, less);

    let mut readers: Vec<ExtVecReader<R>> = match &fc {
        Some(fc) => runs
            .iter()
            .map(|r| r.reader_forecast(0, fc.pool()))
            .collect(),
        None => runs
            .iter()
            .map(|r| r.reader_at_prefetch(0, ov.read_ahead, budget))
            .collect(),
    };
    if let Some(sink) = io_wait {
        for rd in &mut readers {
            rd.set_io_wait_sink(sink.clone());
        }
    }
    if let Some(fc) = &fc {
        fc.pump(&mut readers, less);
    }

    // Write-behind depth is per disk: the output stream round-robins its
    // blocks across an independent array's lanes, so its queue deepens by
    // the lane count to keep all D output queues nonempty.  Under
    // forecasting it deepens further, to the read pool's size: each output
    // write retires behind the ~pool-deep prefetch queue in its lane, so a
    // shallow writer would stall on every block flush waiting out that
    // latency — mirroring the pool gives the writer exactly enough slack to
    // ride it out.  Like the pool itself this is budget headroom via
    // `try_charge`; it degrades gracefully and never changes a transfer.
    let wb = (ov.write_behind * device.stream_lanes()).max(fc.as_ref().map_or(0, |f| f.pool()));
    let mut w = ExtVecWriter::with_write_behind(device, wb, budget);
    if let Some(sink) = io_wait {
        w.set_io_wait_sink(sink.clone());
    }

    // Loser tree wins from k = 3 up (at k ≤ 2 the tree is the comparison).
    let use_tree = match kernel {
        MergeKernel::LoserTree => true,
        MergeKernel::Heap => false,
        MergeKernel::Auto | MergeKernel::Guided => k >= 3,
    };

    // Re-pump the forecaster roughly once per emitted block; exact cadence
    // is irrelevant for correctness (a missed pump is just a demand read).
    let mut since_pump = 0usize;
    macro_rules! tick {
        () => {
            since_pump += 1;
            if since_pump >= b {
                since_pump = 0;
                if let Some(fc) = &fc {
                    fc.pump(&mut readers, less);
                }
            }
        };
    }

    if use_tree {
        let keys: Vec<Option<R>> = readers
            .iter_mut()
            .map(|rd| rd.try_next())
            .collect::<Result<_>>()?;
        let mut lt = LoserTree::new(keys, less);
        while let Some(wi) = lt.winner() {
            // Clone the challenger key so the tree is free to mutate while
            // we drain against it (one O(1) clone per winner switch).
            let challenger = lt.challenger().map(|(ci, ck)| (ci, ck.clone()));
            match challenger {
                None => {
                    // Sole surviving run: stream it straight to the writer.
                    w.push(lt.replace_winner(None))?;
                    while let Some(r) = readers[wi].try_next()? {
                        w.push(r)?;
                        tick!();
                    }
                }
                Some((ci, ck)) => {
                    // Drain run `wi` with one comparison per record until a
                    // record loses to the challenger (then one tree pass).
                    loop {
                        match readers[wi].try_next()? {
                            Some(n) => {
                                let still_wins = if wi < ci {
                                    !less(&ck, &n)
                                } else {
                                    less(&n, &ck)
                                };
                                if still_wins {
                                    w.push(lt.swap_winner(n))?;
                                } else {
                                    w.push(lt.replace_winner(Some(n)))?;
                                    break;
                                }
                            }
                            None => {
                                w.push(lt.replace_winner(None))?;
                                break;
                            }
                        }
                        tick!();
                    }
                }
            }
        }
    } else {
        // Heap of (record, reader index); ties broken by reader index so the
        // merge is stable across runs — the same order the loser tree
        // produces, which the kernel-equivalence tests assert.
        let mut heap: MinHeap<(R, usize), _> =
            MinHeap::with_capacity(k, move |a: &(R, usize), b: &(R, usize)| {
                less(&a.0, &b.0) || (!less(&b.0, &a.0) && a.1 < b.1)
            });
        for (i, rd) in readers.iter_mut().enumerate() {
            if let Some(r) = rd.try_next()? {
                heap.push((r, i));
            }
        }
        while let Some(e) = heap.peek() {
            let i = e.1;
            let rec = match readers[i].try_next()? {
                Some(next) => heap.replace_min((next, i)).0,
                // `peek` just succeeded, so `pop` cannot miss; stop cleanly
                // rather than panic if it ever does.
                None => match heap.pop() {
                    Some(e) => e.0,
                    None => break,
                },
            };
            w.push(rec)?;
            tick!();
        }
    }
    w.finish()
}

/// Pull-mode view of one k-way merge: the final pass of
/// [`merge_sort_streaming`] (or an explicit [`merge_runs_streaming`]) handed
/// to the consumer closure.
///
/// [`try_next`](Self::try_next) yields the merged records in sorted order,
/// one at a time, without ever writing them to disk — the fusion that saves
/// the materialized output's write pass and the consumer's re-read pass
/// (`2·⌈N/B⌉` transfers per sort whose output is scanned once).  The merge
/// kernel (loser tree or heap), forecasting-driven read-ahead, and per-disk
/// overlap all work exactly as in the materialized merge, so the record
/// *sequence* is identical to [`merge_sort_by`]'s output and the input-side
/// transfers are unchanged.
///
/// The stream borrows the final-stage runs, which live in the sorting
/// function's frame; that is why the consumer is a closure rather than the
/// stream being returned.
pub struct SortedStream<'a, R: Record, F> {
    readers: Vec<ExtVecReader<'a, R>>,
    fc: Option<Prefetcher>,
    kernel: StreamKernel<R, F>,
    less: F,
    /// Records since the last forecaster pump (cadence: once per block).
    since_pump: usize,
    per_block: usize,
    peeked: Option<R>,
    _charge: BudgetGuard,
}

enum StreamKernel<R, F> {
    Tree {
        lt: LoserTree<R, F>,
        /// Cached challenger for the current winner: `swap_winner` keeps it
        /// valid (the tree is untouched); any `replace_winner` invalidates.
        cached: Option<(usize, R)>,
        cache_valid: bool,
    },
    /// `(record, run index)` min-heap, ties toward the lower run index —
    /// stored as a raw sift vector so no comparator closure needs boxing.
    Heap(Vec<(R, usize)>),
}

/// Heap order for the streaming heap kernel: by record under `less`, ties
/// broken by run index — the same stable-across-runs order the loser tree
/// produces.
fn hless<R, F: Fn(&R, &R) -> bool>(less: F, a: &(R, usize), b: &(R, usize)) -> bool {
    less(&a.0, &b.0) || (!less(&b.0, &a.0) && a.1 < b.1)
}

fn hsift_up<R, F: Fn(&R, &R) -> bool + Copy>(items: &mut [(R, usize)], mut i: usize, less: F) {
    while i > 0 {
        let parent = (i - 1) / 2;
        if hless(less, &items[i], &items[parent]) {
            items.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

fn hsift_down<R, F: Fn(&R, &R) -> bool + Copy>(items: &mut [(R, usize)], less: F) {
    let n = items.len();
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut smallest = i;
        if l < n && hless(less, &items[l], &items[smallest]) {
            smallest = l;
        }
        if r < n && hless(less, &items[r], &items[smallest]) {
            smallest = r;
        }
        if smallest == i {
            break;
        }
        items.swap(i, smallest);
        i = smallest;
    }
}

impl<'a, R, F> SortedStream<'a, R, F>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    /// Build a stream over `(run, start offset)` pairs — the same reader,
    /// forecaster, and kernel setup as [`merge_runs_inner`], minus the
    /// output writer.  Charges `(k+1)·B` records against `budget` (the +1
    /// stands in for the consumer's working block, mirroring the
    /// materialized merge's accounting).
    fn build(
        parts: &[(&'a ExtVec<R>, u64)],
        budget: &Arc<MemBudget>,
        ov: OverlapConfig,
        kernel: MergeKernel,
        forecast: bool,
        less: F,
    ) -> Result<Self> {
        let k = parts.len();
        let b = parts.first().map_or(1, |(r, _)| r.per_block());
        let charge = budget.charge((k + 1) * b);
        let fc = Prefetcher::build(parts, budget, ov, kernel, forecast, less);
        let mut readers: Vec<ExtVecReader<'a, R>> = match &fc {
            Some(fc) => parts
                .iter()
                .map(|(r, s)| r.reader_forecast(*s, fc.pool()))
                .collect(),
            None => parts
                .iter()
                .map(|(r, s)| r.reader_at_prefetch(*s, ov.read_ahead, budget))
                .collect(),
        };
        if let Some(fc) = &fc {
            fc.pump(&mut readers, less);
        }
        // Same kernel choice as the materialized merge; k = 0 (empty input)
        // degenerates to an empty heap, which the loser tree cannot model.
        let use_tree = k >= 1
            && match kernel {
                MergeKernel::LoserTree => true,
                MergeKernel::Heap => false,
                MergeKernel::Auto | MergeKernel::Guided => k >= 3,
            };
        let kernel = if use_tree {
            let keys: Vec<Option<R>> = readers
                .iter_mut()
                .map(|rd| rd.try_next())
                .collect::<Result<_>>()?;
            StreamKernel::Tree {
                lt: LoserTree::new(keys, less),
                cached: None,
                cache_valid: false,
            }
        } else {
            let mut items: Vec<(R, usize)> = Vec::with_capacity(k);
            for (i, rd) in readers.iter_mut().enumerate() {
                if let Some(r) = rd.try_next()? {
                    items.push((r, i));
                    let at = items.len() - 1;
                    hsift_up(&mut items, at, less);
                }
            }
            StreamKernel::Heap(items)
        };
        Ok(SortedStream {
            readers,
            fc,
            kernel,
            less,
            since_pump: 0,
            per_block: b.max(1),
            peeked: None,
            _charge: charge,
        })
    }

    /// The next record in sorted order, or `None` once the merge is drained.
    /// Any device error (e.g. [`pdm::PdmError::RetriesExhausted`]) from the
    /// underlying run readers propagates here.
    pub fn try_next(&mut self) -> Result<Option<R>> {
        if let Some(r) = self.peeked.take() {
            return Ok(Some(r));
        }
        self.next_inner()
    }

    /// Peek at the next record without consuming it.
    pub fn peek(&mut self) -> Result<Option<&R>> {
        if self.peeked.is_none() {
            self.peeked = self.next_inner()?;
        }
        Ok(self.peeked.as_ref())
    }

    fn next_inner(&mut self) -> Result<Option<R>> {
        let less = self.less;
        let rec = match &mut self.kernel {
            StreamKernel::Tree {
                lt,
                cached,
                cache_valid,
            } => {
                let Some(wi) = lt.winner() else {
                    return Ok(None);
                };
                if !*cache_valid {
                    *cached = lt.challenger().map(|(ci, ck)| (ci, ck.clone()));
                    *cache_valid = true;
                }
                match self.readers[wi].try_next()? {
                    Some(n) => match cached {
                        // Same drain rule as the materialized loop: while the
                        // refill still beats the cached challenger the winner
                        // leaf is swapped in place, no tree pass needed.
                        Some((ci, ck)) => {
                            let still_wins = if wi < *ci {
                                !less(ck, &n)
                            } else {
                                less(&n, ck)
                            };
                            if still_wins {
                                lt.swap_winner(n)
                            } else {
                                *cache_valid = false;
                                lt.replace_winner(Some(n))
                            }
                        }
                        None => lt.swap_winner(n),
                    },
                    None => {
                        *cache_valid = false;
                        lt.replace_winner(None)
                    }
                }
            }
            StreamKernel::Heap(items) => {
                let Some(top) = items.first() else {
                    return Ok(None);
                };
                let i = top.1;
                match self.readers[i].try_next()? {
                    Some(next) => {
                        let old = std::mem::replace(&mut items[0], (next, i));
                        hsift_down(items, less);
                        old.0
                    }
                    None => {
                        let last = items.len() - 1;
                        items.swap(0, last);
                        // `first` just succeeded, so `pop` cannot miss; end
                        // the stream cleanly rather than panic if it does.
                        let Some(old) = items.pop() else {
                            return Ok(None);
                        };
                        if !items.is_empty() {
                            hsift_down(items, less);
                        }
                        old.0
                    }
                }
            }
        };
        self.since_pump += 1;
        if self.since_pump >= self.per_block {
            self.since_pump = 0;
            if let Some(fc) = &self.fc {
                fc.pump(&mut self.readers, less);
            }
        }
        Ok(Some(rec))
    }
}

/// Sort `input` and hand the *final merge pass* to `consume` as a pull
/// stream instead of writing an output array — pipeline fusion in the PODS
/// 1998 cost model.
///
/// Versus [`merge_sort_by`] followed by a scan of the result, this saves
/// exactly one output-write pass plus one re-read pass (`2·⌈N/B⌉` transfers)
/// whenever the final stage actually merges (two or more runs reach it).
/// When run formation already yields a single run the savings are zero — the
/// stream then re-reads that run, costing the same scan the consumer would
/// have paid — but never negative.  Intermediate merge passes (when the run
/// count exceeds the fan-in `k`) still materialize, exactly as in
/// [`merge_sort_by`]; only the last pass fuses.
///
/// Kernel choice, forecasting, and per-disk overlap apply to the streamed
/// pass unchanged, so the record sequence is identical to the materialized
/// sort's output for every configuration.  Setting
/// [`SortConfig::fusion`] to `false` turns fusion off: the sort
/// materializes and the stream degrades to a plain scan of the output —
/// the exact pre-fusion cost, kept as an A/B baseline for benchmarks.
///
/// ```
/// use em_core::{EmConfig, ExtVec};
/// use emsort::{merge_sort_streaming, SortConfig};
///
/// let cfg = EmConfig::new(512, 8);
/// let device = cfg.ram_disk();
/// let input = ExtVec::from_slice(device, &[5u64, 1, 4, 2, 3])?;
/// let collected = merge_sort_streaming(
///     &input,
///     &SortConfig::new(cfg.mem_records::<u64>()),
///     |a, b| a < b,
///     |stream| {
///         let mut out = Vec::new();
///         while let Some(r) = stream.try_next()? {
///             out.push(r);
///         }
///         Ok(out)
///     },
/// )?;
/// assert_eq!(collected, vec![1, 2, 3, 4, 5]);
/// # Ok::<(), pdm::PdmError>(())
/// ```
pub fn merge_sort_streaming<R, F, T, C>(
    input: &ExtVec<R>,
    cfg: &SortConfig,
    less: F,
    consume: C,
) -> Result<T>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy + Send,
    C: FnOnce(&mut SortedStream<'_, R, F>) -> Result<T>,
{
    let k = cfg.effective_fan_in(input.per_block());
    let ov = cfg.overlap;
    if input.is_empty() {
        let budget = MemBudget::new(cfg.mem_records);
        let parts: Vec<(&ExtVec<R>, u64)> = Vec::new();
        let mut stream = SortedStream::build(&parts, &budget, ov, cfg.kernel, cfg.forecast, less)?;
        return consume(&mut stream);
    }
    if !cfg.fusion {
        // A/B baseline (`SortConfig::fusion = false`): materialize the sort
        // and stream the output back as a plain scan — the pre-fusion
        // "write the result, re-read it" cost through the same call site.
        let sorted = merge_sort_by(input, cfg, less)?;
        let budget = MemBudget::new(cfg.mem_records);
        let parts: Vec<(&ExtVec<R>, u64)> = vec![(&sorted, 0)];
        let mut stream = SortedStream::build(&parts, &budget, ov, cfg.kernel, cfg.forecast, less)?;
        let out = consume(&mut stream)?;
        drop(stream);
        sorted.free()?;
        return Ok(out);
    }
    // Identical budget/reserve arithmetic to `merge_sort_impl`: fan-in and
    // run sizes come from `mem_records` alone, so every transfer before the
    // final pass matches the materialized sort block for block.
    let lanes = input.device().stream_lanes();
    let wb = (ov.write_behind * lanes).max(if ov.read_ahead > 0 && cfg.forecast {
        k * ov.read_ahead
    } else {
        0
    });
    let reserve = (k * ov.read_ahead + wb) * input.per_block();
    let budget = MemBudget::new(cfg.mem_records + reserve);

    let mut queue: VecDeque<ExtVec<R>> = form_runs_impl(input, cfg, less, None)?.into();

    // Materialize intermediate passes until one final ≤ k-way merge remains:
    // those outputs are re-merged later (scanned more than once in spirit),
    // so streaming them would buy nothing — fusion only ever applies to the
    // last pass.  Grouping matches `merge_sort_impl`, which drains the same
    // queue front-to-back in groups of k, so the transfers agree exactly.
    let mut merged_streams = 0usize;
    while queue.len() > k {
        let group: Vec<ExtVec<R>> = queue.drain(..k).collect();
        group[0].device().direct_next_stream(merged_streams);
        merged_streams += 1;
        let merged = merge_runs_inner(&group, &budget, ov, cfg.kernel, cfg.forecast, None, less)?;
        for run in group {
            run.free()?;
        }
        queue.push_back(merged);
    }

    let final_runs: Vec<ExtVec<R>> = queue.into();
    let parts: Vec<(&ExtVec<R>, u64)> = final_runs.iter().map(|r| (r, 0)).collect();
    let mut stream = SortedStream::build(&parts, &budget, ov, cfg.kernel, cfg.forecast, less)?;
    let out = consume(&mut stream)?;
    drop(stream);
    for run in final_runs {
        run.free()?;
    }
    Ok(out)
}

/// Push-style wrapper over [`merge_sort_streaming`]: calls `each` once per
/// record in sorted order.  Same cost model — one output-write plus one
/// re-read pass saved versus sort-then-scan whenever the final stage merges.
pub fn sort_into<R, F, E>(input: &ExtVec<R>, cfg: &SortConfig, less: F, mut each: E) -> Result<()>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy + Send,
    E: FnMut(R) -> Result<()>,
{
    merge_sort_streaming(input, cfg, less, |stream| {
        while let Some(r) = stream.try_next()? {
            each(r)?;
        }
        Ok(())
    })
}

/// Producer-side pipeline fusion: a sink that forms sorted runs *directly*
/// from pushed records, then merges them — skipping the unsorted
/// materialization that a "write it out, then sort it" pipeline pays.
///
/// A conventional pipeline stage costs, per `⌈N/B⌉`-block payload: write
/// the unsorted array (1 scan), run formation (2 scans), final merge
/// (2 scans), and the consumer's re-read (1 scan).  `SortingWriter` keeps
/// the current chunk of `M` records in memory, sorts and writes each chunk
/// as a run the moment it fills, and hands the final merge to the consumer
/// as a pull stream ([`SortingWriter::finish_streaming`]) — 2 scans total
/// when run formation's output fits one merge stage.  Both ends of the sort
/// are fused: the unsorted write + re-read *and* the sorted write + re-read
/// disappear.
///
/// [`SortingWriter::finish_sorted`] materializes the result instead, for
/// callers that keep the sorted array; only the producer side fuses then.
///
/// Chunk boundaries, in-memory sorting, merge grouping, and kernel all
/// match [`merge_sort_by`] with [`RunFormation::LoadSort`](crate::RunFormation)
/// over the same push sequence, so the record sequence — including the
/// order of ties under a partial key — is identical to the unfused
/// pipeline's.  With [`SortConfig::fusion`] disabled the writer *becomes*
/// that pipeline (materialize, sort, scan), as an A/B baseline.
///
/// ```
/// use em_core::EmConfig;
/// use emsort::{SortConfig, SortingWriter};
///
/// let cfg = EmConfig::new(512, 8);
/// let device = cfg.ram_disk();
/// let sort_cfg = SortConfig::new(cfg.mem_records::<u64>());
/// let mut w = SortingWriter::new(device, &sort_cfg, |a: &u64, b: &u64| a < b);
/// for x in [5u64, 1, 4, 2, 3] {
///     w.push(x)?;
/// }
/// let collected = w.finish_streaming(|stream| {
///     let mut out = Vec::new();
///     while let Some(r) = stream.try_next()? {
///         out.push(r);
///     }
///     Ok(out)
/// })?;
/// assert_eq!(collected, vec![1, 2, 3, 4, 5]);
/// # Ok::<(), pdm::PdmError>(())
/// ```
pub struct SortingWriter<R: Record, F> {
    device: SharedDevice,
    cfg: SortConfig,
    less: F,
    buf: Vec<R>,
    runs: Vec<ExtVec<R>>,
    /// Fusion-off baseline: records pass through unsorted, exactly as the
    /// pre-fusion pipeline wrote them.
    unsorted: Option<ExtVecWriter<R>>,
    budget: Arc<MemBudget>,
    /// Holds the chunk's `M` records against `budget` for the writer's
    /// lifetime, mirroring run formation's charge.
    _charge: BudgetGuard,
    /// Total records accepted by [`push`](Self::push), fused or not.
    pushed: u64,
}

impl<R, F> SortingWriter<R, F>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy + Send,
{
    /// A sink sorting into `device` under `cfg`'s budget, overlap, kernel,
    /// and forecasting.  `cfg.run_formation` is ignored: records arrive by
    /// push, so runs are load-sorted chunks by construction.
    pub fn new(device: SharedDevice, cfg: &SortConfig, less: F) -> Self {
        let cfg = SortConfig {
            run_formation: crate::RunFormation::LoadSort,
            ..*cfg
        };
        let per_block = (device.block_size() / R::BYTES).max(1);
        let ov = cfg.overlap.for_lanes(device.stream_lanes());
        let reserve = (ov.read_ahead + ov.write_behind) * per_block;
        let budget = MemBudget::new(cfg.mem_records + reserve);
        let charge = budget.charge(cfg.mem_records);
        SortingWriter {
            device,
            cfg,
            less,
            buf: Vec::new(),
            runs: Vec::new(),
            unsorted: None,
            budget,
            _charge: charge,
            pushed: 0,
        }
    }

    /// Total records accepted so far, spilled or still in memory — the
    /// producer-side record count a pipeline operator reports without
    /// keeping its own tally.  Identical in fused and baseline modes.
    pub fn pushed_records(&self) -> u64 {
        self.pushed
    }

    /// Runs spilled to the device so far.  Increases by one each time
    /// [`push`](Self::push) crosses an `M`-record chunk boundary — the
    /// moment a recovery-minded producer should checkpoint (see
    /// [`manifest_bytes`](Self::manifest_bytes)).
    pub fn runs_spilled(&self) -> usize {
        self.runs.len()
    }

    /// Records already durable in spilled runs.  After a crash, a producer
    /// that reattaches the writer resumes feeding from this offset of its
    /// source; records pushed since the last spill lived only in memory and
    /// are the producer's to replay.
    pub fn spilled_records(&self) -> u64 {
        self.runs.iter().map(|r| r.len()).sum()
    }

    /// Serialize the spilled-run state — each run's block table and forecast
    /// heads — for a journal checkpoint manifest (see
    /// `pdm::Journal::set_manifest`).  Costs no I/O.  Only the durable runs
    /// are captured: the in-memory chunk is what a crash loses, and
    /// [`spilled_records`](Self::spilled_records) tells the producer where
    /// to resume.  Fusion-off baseline writers have no run state and yield
    /// an empty manifest.
    pub fn manifest_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.runs.len() as u64).to_le_bytes());
        for run in &self.runs {
            let m = run.manifest_bytes();
            out.extend_from_slice(&(m.len() as u64).to_le_bytes());
            out.extend_from_slice(&m);
        }
        out
    }

    /// Reattach a writer from metadata produced by
    /// [`manifest_bytes`](Self::manifest_bytes): the spilled runs are
    /// readopted, the in-memory chunk starts empty.  `cfg` and `less` must
    /// match the original writer's.  Costs no I/O; returns an error on a
    /// malformed manifest.
    pub fn reattach(device: SharedDevice, cfg: &SortConfig, less: F, bytes: &[u8]) -> Result<Self> {
        fn corrupt() -> pdm::PdmError {
            pdm::PdmError::Io(std::io::Error::other("malformed SortingWriter manifest"))
        }
        let mut w = Self::new(device.clone(), cfg, less);
        let mut pos = 0usize;
        let take_u64 = |pos: &mut usize| -> Result<u64> {
            let end = pos.checked_add(8).ok_or_else(corrupt)?;
            let chunk = bytes.get(*pos..end).ok_or_else(corrupt)?;
            *pos = end;
            Ok(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")))
        };
        let n_runs = take_u64(&mut pos)? as usize;
        for _ in 0..n_runs {
            let m_len = take_u64(&mut pos)? as usize;
            let end = pos.checked_add(m_len).ok_or_else(corrupt)?;
            let m = bytes.get(pos..end).ok_or_else(corrupt)?;
            pos = end;
            w.runs.push(ExtVec::from_manifest(device.clone(), m)?);
        }
        if pos != bytes.len() {
            return Err(corrupt());
        }
        w.pushed = w.spilled_records();
        Ok(w)
    }

    /// Add a record; sorts and spills the in-memory chunk as a run when it
    /// reaches `M` records.
    pub fn push(&mut self, r: R) -> Result<()> {
        self.pushed += 1;
        if !self.cfg.fusion {
            return self
                .unsorted
                .get_or_insert_with(|| ExtVecWriter::new(self.device.clone()))
                .push(r);
        }
        self.buf.push(r);
        if self.buf.len() >= self.cfg.mem_records {
            self.flush_run()?;
        }
        Ok(())
    }

    fn flush_run(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let ov = self.cfg.overlap.for_lanes(self.device.stream_lanes());
        // Stagger run start lanes exactly as load-sort run formation does.
        self.device.direct_next_stream(self.runs.len());
        let mut w =
            ExtVecWriter::with_write_behind(self.device.clone(), ov.write_behind, &self.budget);
        write_sorted_chunk(
            &mut self.buf,
            self.cfg.effective_run_threads(),
            self.less,
            &mut w,
        )?;
        self.runs.push(w.finish()?);
        Ok(())
    }

    /// Fusion-off baseline: finish the unsorted array and sort it the
    /// pre-fusion way.  Returns the materialized sorted array.
    fn finish_baseline(&mut self) -> Result<ExtVec<R>> {
        let unsorted = match self.unsorted.take() {
            Some(w) => w.finish()?,
            None => ExtVec::new(self.device.clone()),
        };
        let sorted = merge_sort_by(&unsorted, &self.cfg, self.less)?;
        unsorted.free()?;
        Ok(sorted)
    }

    /// Merge-phase budget: identical reserve arithmetic to
    /// [`merge_sort_by`], so transfers agree block for block.
    fn merge_budget(&self, k: usize) -> Arc<MemBudget> {
        let per_block = (self.device.block_size() / R::BYTES).max(1);
        let ov = self.cfg.overlap;
        let lanes = self.device.stream_lanes();
        let wb = (ov.write_behind * lanes).max(if ov.read_ahead > 0 && self.cfg.forecast {
            k * ov.read_ahead
        } else {
            0
        });
        MemBudget::new(self.cfg.mem_records + (k * ov.read_ahead + wb) * per_block)
    }

    /// Merge the spilled runs down and hand the final `≤ k`-way merge to
    /// `consume` as a pull stream — both ends of the sort fused.
    pub fn finish_streaming<T, C>(mut self, consume: C) -> Result<T>
    where
        C: FnOnce(&mut SortedStream<'_, R, F>) -> Result<T>,
    {
        if !self.cfg.fusion {
            let sorted = self.finish_baseline()?;
            let budget = MemBudget::new(self.cfg.mem_records);
            let parts: Vec<(&ExtVec<R>, u64)> = vec![(&sorted, 0)];
            let mut stream = SortedStream::build(
                &parts,
                &budget,
                self.cfg.overlap,
                self.cfg.kernel,
                self.cfg.forecast,
                self.less,
            )?;
            let out = consume(&mut stream)?;
            drop(stream);
            sorted.free()?;
            return Ok(out);
        }
        self.flush_run()?;
        let per_block = (self.device.block_size() / R::BYTES).max(1);
        let k = self.cfg.effective_fan_in(per_block);
        let ov = self.cfg.overlap;
        let budget = self.merge_budget(k);
        // Intermediate passes materialize with the same front-to-back
        // grouping as `merge_sort_streaming`; only the last pass fuses.
        let mut queue: VecDeque<ExtVec<R>> = std::mem::take(&mut self.runs).into();
        let mut merged_streams = 0usize;
        while queue.len() > k {
            let group: Vec<ExtVec<R>> = queue.drain(..k).collect();
            group[0].device().direct_next_stream(merged_streams);
            merged_streams += 1;
            let merged = merge_runs_inner(
                &group,
                &budget,
                ov,
                self.cfg.kernel,
                self.cfg.forecast,
                None,
                self.less,
            )?;
            for run in group {
                run.free()?;
            }
            queue.push_back(merged);
        }
        let final_runs: Vec<ExtVec<R>> = queue.into();
        let parts: Vec<(&ExtVec<R>, u64)> = final_runs.iter().map(|r| (r, 0)).collect();
        let mut stream = SortedStream::build(
            &parts,
            &budget,
            ov,
            self.cfg.kernel,
            self.cfg.forecast,
            self.less,
        )?;
        let out = consume(&mut stream)?;
        drop(stream);
        for run in final_runs {
            run.free()?;
        }
        Ok(out)
    }

    /// Merge the spilled runs into one materialized sorted array — producer
    /// fusion only, for callers that keep the result.
    pub fn finish_sorted(mut self) -> Result<ExtVec<R>> {
        if !self.cfg.fusion {
            return self.finish_baseline();
        }
        self.flush_run()?;
        let per_block = (self.device.block_size() / R::BYTES).max(1);
        let k = self.cfg.effective_fan_in(per_block);
        let ov = self.cfg.overlap;
        let budget = self.merge_budget(k);
        // Same pass structure as `merge_sort_by`: merge groups of k until
        // one array remains.
        let mut queue: VecDeque<ExtVec<R>> = std::mem::take(&mut self.runs).into();
        let mut merged_streams = 0usize;
        while queue.len() > 1 {
            let take = k.min(queue.len());
            let group: Vec<ExtVec<R>> = queue.drain(..take).collect();
            group[0].device().direct_next_stream(merged_streams);
            merged_streams += 1;
            let merged = merge_runs_inner(
                &group,
                &budget,
                ov,
                self.cfg.kernel,
                self.cfg.forecast,
                None,
                self.less,
            )?;
            for run in group {
                run.free()?;
            }
            queue.push_back(merged);
        }
        match queue.pop_front() {
            Some(sorted) => Ok(sorted),
            None => Ok(ExtVec::new(self.device.clone())),
        }
    }
}

/// Stream one k-way merge of already-sorted runs to `consume` instead of
/// writing it out — the run-merge counterpart of [`merge_sort_streaming`],
/// for callers that keep their own runs (e.g. an external priority queue
/// refilling from its spilled runs).
///
/// `parts` pairs each run with the record offset to start merging from, so a
/// partially-consumed run joins the merge at its current position.  Charges
/// `(k+1)·B` records against `budget`; kernel, forecasting, and overlap
/// follow `cfg` exactly as in [`merge_runs_with`], and reading the streamed
/// records costs one read of every remaining input block and **zero**
/// writes.
pub fn merge_runs_streaming<R, F, T, C>(
    parts: &[(&ExtVec<R>, u64)],
    budget: &Arc<MemBudget>,
    cfg: &SortConfig,
    less: F,
    consume: C,
) -> Result<T>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
    C: FnOnce(&mut SortedStream<'_, R, F>) -> Result<T>,
{
    let mut stream =
        SortedStream::build(parts, budget, cfg.overlap, cfg.kernel, cfg.forecast, less)?;
    consume(&mut stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunFormation;
    use em_core::{bounds, EmConfig};
    use rand::prelude::*;

    fn device_b8() -> pdm::SharedDevice {
        EmConfig::new(64, 8).ram_disk() // B = 8 u64 records per block
    }

    fn random_input(device: &pdm::SharedDevice, n: u64, seed: u64) -> (ExtVec<u64>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        (ExtVec::from_slice(device.clone(), &data).unwrap(), data)
    }

    #[test]
    fn sorts_random_input() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 5000, 1);
        let out = merge_sort(&input, &SortConfig::new(64)).unwrap();
        data.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), data);
    }

    #[test]
    fn sorts_with_replacement_selection() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 5000, 2);
        let cfg = SortConfig::new(64).with_run_formation(RunFormation::ReplacementSelection);
        let out = merge_sort(&input, &cfg).unwrap();
        data.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), data);
    }

    #[test]
    fn already_sorted_and_reverse_inputs() {
        let device = device_b8();
        for data in [
            (0u64..1000).collect::<Vec<_>>(),
            (0u64..1000).rev().collect(),
        ] {
            let input = ExtVec::from_slice(device.clone(), &data).unwrap();
            let out = merge_sort(&input, &SortConfig::new(64)).unwrap();
            let mut expect = data.clone();
            expect.sort_unstable();
            assert_eq!(out.to_vec().unwrap(), expect);
        }
    }

    #[test]
    fn duplicate_heavy_input() {
        let device = device_b8();
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<u64> = (0..3000).map(|_| rng.gen_range(0..4)).collect();
        let input = ExtVec::from_slice(device, &data).unwrap();
        let out = merge_sort(&input, &SortConfig::new(48)).unwrap();
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), expect);
    }

    #[test]
    fn small_inputs() {
        let device = device_b8();
        for n in [0u64, 1, 2, 7, 8, 9] {
            let data: Vec<u64> = (0..n).rev().collect();
            let input = ExtVec::from_slice(device.clone(), &data).unwrap();
            let out = merge_sort(&input, &SortConfig::new(32)).unwrap();
            let mut expect = data.clone();
            expect.sort_unstable();
            assert_eq!(out.to_vec().unwrap(), expect, "n={n}");
        }
    }

    #[test]
    fn custom_comparator_sorts_descending() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 500, 4);
        let out = merge_sort_by(&input, &SortConfig::new(64), |a, b| a > b).unwrap();
        data.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(out.to_vec().unwrap(), data);
    }

    #[test]
    fn io_matches_pass_prediction() {
        let device = device_b8();
        let b = 8usize;
        let m = 64usize; // m/B = 8 blocks → fan-in 7
        let n = 10_000u64;
        let (input, _) = random_input(&device, n, 5);
        let before = device.stats().snapshot();
        let out = merge_sort(&input, &SortConfig::new(m)).unwrap();
        let d = device.stats().snapshot().since(&before);
        let k = SortConfig::new(m).effective_fan_in(b);
        let predicted = bounds::merge_sort_ios(n, m, b, k);
        let measured = d.total() as f64;
        // Partial run blocks add a little slack; stay within 10%.
        assert!(
            (measured - predicted).abs() / predicted < 0.10,
            "measured {measured} vs predicted {predicted}"
        );
        assert_eq!(out.len(), n);
    }

    #[test]
    fn fan_in_override_adds_passes() {
        let device = device_b8();
        let (input, _) = random_input(&device, 4096, 6);
        let m = 64;
        let wide = {
            let before = device.stats().snapshot();
            merge_sort(&input, &SortConfig::new(m)).unwrap();
            device.stats().snapshot().since(&before).total()
        };
        let narrow = {
            let before = device.stats().snapshot();
            merge_sort(&input, &SortConfig::new(m).with_fan_in(2)).unwrap();
            device.stats().snapshot().since(&before).total()
        };
        assert!(
            narrow as f64 > wide as f64 * 1.5,
            "binary merging should need clearly more I/Os: narrow={narrow} wide={wide}"
        );
    }

    #[test]
    fn intermediate_runs_are_freed() {
        let device = device_b8();
        let (input, _) = random_input(&device, 4096, 7);
        let blocks_before = device.allocated_blocks();
        let out = merge_sort(&input, &SortConfig::new(64).with_fan_in(2)).unwrap();
        let blocks_after = device.allocated_blocks();
        // Only the output should remain beyond the input.
        assert_eq!(blocks_after - blocks_before, out.num_blocks() as u64);
    }

    #[test]
    fn sorts_tuples_by_key() {
        let device = EmConfig::new(64, 8).ram_disk();
        let mut rng = StdRng::seed_from_u64(8);
        let data: Vec<(u64, u64)> = (0..1000u64)
            .map(|i| (rng.gen_range(0..100u64), i))
            .collect();
        let input = ExtVec::from_slice(device, &data).unwrap();
        let out = merge_sort_by(&input, &SortConfig::new(64), |a, b| a.0 < b.0).unwrap();
        let v = out.to_vec().unwrap();
        assert!(v.windows(2).all(|w| w[0].0 <= w[1].0));
        let mut expect = data;
        expect.sort_by_key(|p| p.0);
        let mut got = v;
        got.sort_by_key(|p| p.0); // same multiset check irrespective of tie order
        expect.sort_by_key(|p| (p.0, p.1));
        got.sort_by_key(|p| (p.0, p.1));
        assert_eq!(got, expect);
    }

    #[test]
    fn kernels_produce_identical_output_and_counts() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 6000, 9);
        data.sort_unstable();
        let mut baseline: Option<(Vec<u64>, u64, u64)> = None;
        for kernel in [
            MergeKernel::Heap,
            MergeKernel::LoserTree,
            MergeKernel::Auto,
            MergeKernel::Guided,
        ] {
            let before = device.stats().snapshot();
            let out = merge_sort(&input, &SortConfig::new(64).with_merge_kernel(kernel)).unwrap();
            let d = device.stats().snapshot().since(&before);
            let got = (out.to_vec().unwrap(), d.reads(), d.writes());
            assert_eq!(got.0, data, "{kernel:?} output");
            match &baseline {
                None => baseline = Some(got),
                Some(b) => {
                    assert_eq!(&got.1, &b.1, "{kernel:?} reads");
                    assert_eq!(&got.2, &b.2, "{kernel:?} writes");
                }
            }
            out.free().unwrap();
        }
    }

    #[test]
    fn stability_identical_across_kernels() {
        // Key-only comparator on (key, payload) pairs: equal keys must come
        // out in identical (run-index) order from both kernels.
        let device = EmConfig::new(64, 8).ram_disk();
        let mut rng = StdRng::seed_from_u64(10);
        let data: Vec<(u64, u64)> = (0..2000u64).map(|i| (rng.gen_range(0..8u64), i)).collect();
        let input = ExtVec::from_slice(device, &data).unwrap();
        let heap = merge_sort_by(
            &input,
            &SortConfig::new(64).with_merge_kernel(MergeKernel::Heap),
            |a, b| a.0 < b.0,
        )
        .unwrap();
        let tree = merge_sort_by(
            &input,
            &SortConfig::new(64).with_merge_kernel(MergeKernel::LoserTree),
            |a, b| a.0 < b.0,
        )
        .unwrap();
        assert_eq!(heap.to_vec().unwrap(), tree.to_vec().unwrap());
    }

    #[test]
    fn forecast_counters_light_up_with_overlap() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 4000, 11);
        let cfg = SortConfig::new(64).with_overlap(OverlapConfig::symmetric(2));
        let before = device.stats().snapshot();
        let out = merge_sort(&input, &cfg).unwrap();
        let d = device.stats().snapshot().since(&before);
        data.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), data);
        assert!(
            d.forecast_issued() > 0,
            "forecasting should drive the merge prefetches"
        );
        assert_eq!(
            d.forecast_hits(),
            d.forecast_issued(),
            "every forecast block is consumed"
        );
        assert_eq!(d.prefetch_wasted(), 0);
    }

    #[test]
    fn forecast_off_still_sorts_with_identical_counts() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 4000, 12);
        let base = SortConfig::new(64).with_overlap(OverlapConfig::symmetric(2));
        let before = device.stats().snapshot();
        let with_fc = merge_sort(&input, &base).unwrap();
        let mid = device.stats().snapshot();
        let without = merge_sort(&input, &base.with_forecast(false)).unwrap();
        let after = device.stats().snapshot();
        data.sort_unstable();
        assert_eq!(with_fc.to_vec().unwrap(), data);
        assert_eq!(without.to_vec().unwrap(), data);
        let (d1, d2) = (mid.since(&before), after.since(&mid));
        assert_eq!(d1.reads(), d2.reads());
        assert_eq!(d1.writes(), d2.writes());
        assert_eq!(d2.forecast_issued(), 0, "forecast off issues nothing");
    }

    #[test]
    fn guided_kernel_matches_forecasting_with_identical_counts() {
        // With overlap on, Guided swaps the forecaster for the static guide
        // sequence: same records, same transfer counts, prefetch counters
        // light up, and the guide never over-fetches.
        let device = device_b8();
        let (input, mut data) = random_input(&device, 6000, 14);
        data.sort_unstable();
        let base = SortConfig::new(64).with_overlap(OverlapConfig::symmetric(2));
        let before = device.stats().snapshot();
        let auto = merge_sort(&input, &base).unwrap();
        let mid = device.stats().snapshot();
        let guided = merge_sort(&input, &base.with_merge_kernel(MergeKernel::Guided)).unwrap();
        let after = device.stats().snapshot();
        assert_eq!(auto.to_vec().unwrap(), data);
        assert_eq!(guided.to_vec().unwrap(), data);
        let (d_auto, d_guided) = (mid.since(&before), after.since(&mid));
        assert_eq!(d_auto.reads(), d_guided.reads(), "guided reads");
        assert_eq!(d_auto.writes(), d_guided.writes(), "guided writes");
        assert!(
            d_guided.forecast_issued() > 0,
            "the guide should drive the merge prefetches"
        );
        assert_eq!(
            d_guided.prefetch_wasted(),
            0,
            "the guide never over-fetches"
        );
    }

    #[test]
    fn guided_overrides_forecast_flag() {
        // forecast=false normally disables scheduled prefetch; Guided plans
        // from the guide regardless, with identical transfer counts.
        let device = device_b8();
        let (input, mut data) = random_input(&device, 4000, 15);
        data.sort_unstable();
        let cfg = SortConfig::new(64)
            .with_overlap(OverlapConfig::symmetric(2))
            .with_forecast(false)
            .with_merge_kernel(MergeKernel::Guided);
        let before = device.stats().snapshot();
        let out = merge_sort(&input, &cfg).unwrap();
        let d = device.stats().snapshot().since(&before);
        assert_eq!(out.to_vec().unwrap(), data);
        assert!(
            d.forecast_issued() > 0,
            "guide plans despite forecast=false"
        );
        assert_eq!(d.prefetch_wasted(), 0);
    }

    #[test]
    fn guided_stability_matches_other_kernels() {
        // Key-only comparator on (key, payload) pairs: the guided merge must
        // resolve ties exactly as the forecasting kernels do.
        let device = EmConfig::new(64, 8).ram_disk();
        let mut rng = StdRng::seed_from_u64(16);
        let data: Vec<(u64, u64)> = (0..2000u64).map(|i| (rng.gen_range(0..8u64), i)).collect();
        let input = ExtVec::from_slice(device, &data).unwrap();
        let base = SortConfig::new(64).with_overlap(OverlapConfig::symmetric(2));
        let auto = merge_sort_by(&input, &base, |a, b| a.0 < b.0).unwrap();
        let guided = merge_sort_by(
            &input,
            &base.with_merge_kernel(MergeKernel::Guided),
            |a, b| a.0 < b.0,
        )
        .unwrap();
        assert_eq!(auto.to_vec().unwrap(), guided.to_vec().unwrap());
    }

    #[test]
    fn ram_efficient_full_sort_matches_load_sort() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 6000, 17);
        data.sort_unstable();
        let base = SortConfig::new(64).with_run_threads(1);
        let before = device.stats().snapshot();
        let ls = merge_sort(&input, &base).unwrap();
        let mid = device.stats().snapshot();
        let re = merge_sort(&input, &base.with_run_formation(RunFormation::RamEfficient)).unwrap();
        let after = device.stats().snapshot();
        assert_eq!(ls.to_vec().unwrap(), data);
        assert_eq!(re.to_vec().unwrap(), data);
        let (d_ls, d_re) = (mid.since(&before), after.since(&mid));
        assert_eq!(d_ls.reads(), d_re.reads(), "RamEfficient reads");
        assert_eq!(d_ls.writes(), d_re.writes(), "RamEfficient writes");
    }

    #[test]
    fn metrics_report_phases() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 5000, 13);
        let (out, m) = merge_sort_with_metrics(&input, &SortConfig::new(64), |a, b| a < b).unwrap();
        data.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), data);
        assert!(m.run_formation_secs > 0.0);
        assert!(m.merge_secs > 0.0);
        assert!(m.merge_passes >= 1, "5000 records at M=64 need merging");
        assert!(m.run_formation_io_wait_secs >= 0.0 && m.merge_io_wait_secs >= 0.0);
        assert!(m.run_formation_io_wait_secs <= m.run_formation_secs);
        assert!(m.merge_io_wait_secs <= m.merge_secs);
    }

    fn drain<R: Record, F: Fn(&R, &R) -> bool + Copy>(
        s: &mut super::SortedStream<'_, R, F>,
    ) -> Result<Vec<R>> {
        let mut out = Vec::new();
        while let Some(r) = s.try_next()? {
            out.push(r);
        }
        Ok(out)
    }

    #[test]
    fn streaming_matches_materialized_sequence() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 6000, 41);
        data.sort_unstable();
        for kernel in [
            MergeKernel::Heap,
            MergeKernel::LoserTree,
            MergeKernel::Auto,
            MergeKernel::Guided,
        ] {
            let cfg = SortConfig::new(64).with_merge_kernel(kernel);
            let got = merge_sort_streaming(&input, &cfg, |a, b| a < b, drain).unwrap();
            assert_eq!(got, data, "{kernel:?}");
        }
    }

    #[test]
    fn streaming_saves_exactly_the_final_pass() {
        let device = device_b8();
        let (input, _) = random_input(&device, 6000, 42);
        let cfg = SortConfig::new(64);
        // Materialized sort + one consumer scan of the output.
        let before = device.stats().snapshot();
        let sorted = merge_sort(&input, &cfg).unwrap();
        let materialized: Vec<u64> = {
            let mut out = Vec::new();
            let mut r = sorted.reader();
            while let Some(x) = r.try_next().unwrap() {
                out.push(x);
            }
            out
        };
        let d_mat = device.stats().snapshot().since(&before);
        let out_blocks = sorted.num_blocks() as u64;
        sorted.free().unwrap();
        // Fused sort: the consumer reads the final merge directly.
        let before = device.stats().snapshot();
        let streamed = merge_sort_streaming(&input, &cfg, |a, b| a < b, drain).unwrap();
        let d_str = device.stats().snapshot().since(&before);
        assert_eq!(streamed, materialized);
        assert_eq!(
            d_str.total() + 2 * out_blocks,
            d_mat.total(),
            "streaming must save exactly the output write + re-read"
        );
        assert_eq!(d_str.writes() + out_blocks, d_mat.writes());
        assert_eq!(d_str.reads() + out_blocks, d_mat.reads());
    }

    #[test]
    fn fusion_off_costs_exactly_sort_then_scan() {
        let device = device_b8();
        let (input, mut expect) = random_input(&device, 6000, 45);
        expect.sort_unstable();
        let cfg = SortConfig::new(64);
        // Materialized sort + consumer scan, by hand.
        let before = device.stats().snapshot();
        let sorted = merge_sort(&input, &cfg).unwrap();
        {
            let mut r = sorted.reader();
            while r.try_next().unwrap().is_some() {}
        }
        let d_mat = device.stats().snapshot().since(&before);
        sorted.free().unwrap();
        // The same call site with fusion disabled must pay the same bill.
        let before = device.stats().snapshot();
        let got =
            merge_sort_streaming(&input, &cfg.with_fusion(false), |a, b| a < b, drain).unwrap();
        let d_off = device.stats().snapshot().since(&before);
        assert_eq!(got, expect);
        assert_eq!(d_off.reads(), d_mat.reads(), "fusion-off reads must match");
        assert_eq!(
            d_off.writes(),
            d_mat.writes(),
            "fusion-off writes must match"
        );
    }

    #[test]
    fn sorting_writer_matches_unfused_pipeline_tie_order() {
        // Key-only comparator over (key, seq) pairs: the fused writer must
        // order ties exactly as the materialize-then-sort pipeline does.
        let device = device_b8();
        let mut rng = StdRng::seed_from_u64(46);
        let data: Vec<(u64, u64)> = (0..3000u64).map(|i| (rng.gen_range(0..8u64), i)).collect();
        let less = |a: &(u64, u64), b: &(u64, u64)| a.0 < b.0;
        let cfg = SortConfig::new(64);
        let mut fused = SortingWriter::new(device.clone(), &cfg, less);
        let mut unfused = SortingWriter::new(device.clone(), &cfg.with_fusion(false), less);
        for &r in &data {
            fused.push(r).unwrap();
            unfused.push(r).unwrap();
        }
        let a = fused.finish_sorted().unwrap();
        let b = unfused.finish_sorted().unwrap();
        assert_eq!(a.to_vec().unwrap(), b.to_vec().unwrap());
        a.free().unwrap();
        b.free().unwrap();
    }

    #[test]
    fn sorting_writer_fuses_both_ends_of_the_sort() {
        let device = device_b8();
        let mut rng = StdRng::seed_from_u64(47);
        let data: Vec<u64> = (0..6000u64).map(|_| rng.gen()).collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        let cfg = SortConfig::new(64);
        // The unfused pipeline by hand, metered per phase: write the
        // unsorted array, sort it, scan the sorted output.
        let before = device.stats().snapshot();
        let mut w = ExtVecWriter::new(device.clone());
        for &r in &data {
            w.push(r).unwrap();
        }
        let unsorted = w.finish().unwrap();
        let mid_write = device.stats().snapshot();
        let sorted = merge_sort(&unsorted, &cfg).unwrap();
        let mid_sort = device.stats().snapshot();
        {
            let mut r = sorted.reader();
            while r.try_next().unwrap().is_some() {}
        }
        let d_unsorted = mid_write.since(&before);
        let d_sort = mid_sort.since(&mid_write);
        let d_scan = device.stats().snapshot().since(&mid_sort);
        sorted.free().unwrap();
        unsorted.free().unwrap();
        // Fused: same records through a SortingWriter, consumer pulls the
        // final merge.
        let before = device.stats().snapshot();
        let mut sw = SortingWriter::new(device.clone(), &cfg, |a: &u64, b: &u64| a < b);
        for &r in &data {
            sw.push(r).unwrap();
        }
        let got = sw.finish_streaming(drain).unwrap();
        let d_fused = device.stats().snapshot().since(&before);
        assert_eq!(got, expect);
        // Producer fusion drops the unsorted write and its re-read; consumer
        // fusion drops the sorted write and its re-read.  Everything else is
        // transfer-identical.
        assert_eq!(
            d_fused.writes() + d_scan.reads(),
            d_sort.writes(),
            "fused writes must be the sort's minus the final output write"
        );
        assert_eq!(
            d_fused.reads() + d_unsorted.writes(),
            d_sort.reads(),
            "fused reads must be the sort's minus the unsorted re-read"
        );
    }

    #[test]
    fn sorting_writer_fusion_off_is_the_exact_baseline() {
        let device = device_b8();
        let mut rng = StdRng::seed_from_u64(48);
        let data: Vec<u64> = (0..6000u64).map(|_| rng.gen()).collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        let cfg = SortConfig::new(64);
        // Hand-rolled pre-fusion pipeline cost.
        let before = device.stats().snapshot();
        let mut w = ExtVecWriter::new(device.clone());
        for &r in &data {
            w.push(r).unwrap();
        }
        let unsorted = w.finish().unwrap();
        let sorted = merge_sort(&unsorted, &cfg).unwrap();
        {
            let mut r = sorted.reader();
            while r.try_next().unwrap().is_some() {}
        }
        let d_hand = device.stats().snapshot().since(&before);
        sorted.free().unwrap();
        unsorted.free().unwrap();
        // SortingWriter with fusion off must pay the same bill.
        let before = device.stats().snapshot();
        let mut sw = SortingWriter::new(
            device.clone(),
            &cfg.with_fusion(false),
            |a: &u64, b: &u64| a < b,
        );
        for &r in &data {
            sw.push(r).unwrap();
        }
        let got = sw.finish_streaming(drain).unwrap();
        let d_off = device.stats().snapshot().since(&before);
        assert_eq!(got, expect);
        assert_eq!(d_off.reads(), d_hand.reads());
        assert_eq!(d_off.writes(), d_hand.writes());
    }

    #[test]
    fn sorting_writer_empty_and_in_memory_inputs() {
        let device = device_b8();
        let sw = SortingWriter::new(device.clone(), &SortConfig::new(64), |a: &u64, b| a < b);
        let got = sw.finish_streaming(drain).unwrap();
        assert!(got.is_empty());
        let sw = SortingWriter::new(device.clone(), &SortConfig::new(64), |a: &u64, b| a < b);
        let out = sw.finish_sorted().unwrap();
        assert!(out.to_vec().unwrap().is_empty());
        // A single partial chunk: one run, streamed straight back.
        let mut sw = SortingWriter::new(device, &SortConfig::new(64), |a: &u64, b| a < b);
        for x in (0..40u64).rev() {
            sw.push(x).unwrap();
        }
        let got = sw.finish_streaming(drain).unwrap();
        assert_eq!(got, (0..40).collect::<Vec<u64>>());
    }

    #[test]
    fn sorting_writer_reattaches_spilled_runs_after_a_crash() {
        let device = device_b8();
        let cfg = SortConfig::new(64);
        let mut sw = SortingWriter::new(device.clone(), &cfg, |a: &u64, b: &u64| a < b);
        // Feed descending data; 200 records at M=64 spill 3 runs with 8 in
        // memory.  A crash loses the in-memory 8; the producer replays from
        // `spilled_records()`.
        let data: Vec<u64> = (0..200u64).rev().collect();
        for &x in &data {
            sw.push(x).unwrap();
        }
        assert_eq!(sw.runs_spilled(), 3);
        let resume_at = sw.spilled_records();
        assert_eq!(resume_at, 192);
        let bytes = sw.manifest_bytes();
        std::mem::forget(sw); // crash: the runs now belong to the reattached writer
        let mut rw =
            SortingWriter::reattach(device.clone(), &cfg, |a: &u64, b: &u64| a < b, &bytes)
                .unwrap();
        assert_eq!(rw.runs_spilled(), 3);
        for &x in &data[resume_at as usize..] {
            rw.push(x).unwrap();
        }
        let sorted = rw.finish_sorted().unwrap();
        assert_eq!(sorted.to_vec().unwrap(), (0..200).collect::<Vec<u64>>());
        // Corruption is an error, not a panic.
        assert!(
            SortingWriter::<u64, _>::reattach(device, &cfg, |a, b| a < b, &bytes[..4]).is_err()
        );
    }

    #[test]
    fn streaming_single_run_and_empty_inputs() {
        let device = device_b8();
        // Fits in memory: one run, streamed back as a plain scan.
        let data: Vec<u64> = (0..40u64).rev().collect();
        let input = ExtVec::from_slice(device.clone(), &data).unwrap();
        let got = merge_sort_streaming(&input, &SortConfig::new(64), |a, b| a < b, drain).unwrap();
        assert_eq!(got, (0..40).collect::<Vec<u64>>());
        let empty: ExtVec<u64> = ExtVec::new(device);
        let got = merge_sort_streaming(&empty, &SortConfig::new(64), |a, b| a < b, drain).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn streaming_frees_every_run() {
        let device = device_b8();
        let (input, _) = random_input(&device, 4096, 43);
        let blocks_before = device.allocated_blocks();
        merge_sort_streaming(
            &input,
            &SortConfig::new(64).with_fan_in(2),
            |a, b| a < b,
            |s| {
                while s.try_next()?.is_some() {}
                Ok(())
            },
        )
        .unwrap();
        // Nothing is materialized, so nothing beyond the input remains.
        assert_eq!(device.allocated_blocks(), blocks_before);
    }

    #[test]
    fn streaming_peek_does_not_consume() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 1000, 44);
        data.sort_unstable();
        let got = merge_sort_streaming(
            &input,
            &SortConfig::new(64),
            |a, b| a < b,
            |s| {
                let mut out = Vec::new();
                while let Some(&next) = s.peek()? {
                    assert_eq!(s.peek()?.copied(), Some(next), "peek is idempotent");
                    assert_eq!(s.try_next()?, Some(next));
                    out.push(next);
                }
                assert!(s.try_next()?.is_none());
                Ok(out)
            },
        )
        .unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn sort_into_pushes_sorted_order() {
        let device = device_b8();
        let (input, mut data) = random_input(&device, 3000, 45);
        data.sort_unstable();
        let mut out = Vec::new();
        sort_into(
            &input,
            &SortConfig::new(64),
            |a, b| a < b,
            |r| {
                out.push(r);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn merge_runs_streaming_with_offsets() {
        let device = device_b8();
        let a = ExtVec::from_slice(device.clone(), &(0u64..50).collect::<Vec<_>>()).unwrap();
        let b = ExtVec::from_slice(device.clone(), &(25u64..75).collect::<Vec<_>>()).unwrap();
        let budget = MemBudget::new(256);
        // Start run `a` at offset 30: only 30..50 takes part.
        let parts = [(&a, 30u64), (&b, 0u64)];
        let got = merge_runs_streaming(&parts, &budget, &SortConfig::new(64), |x, y| x < y, drain)
            .unwrap();
        let mut expect: Vec<u64> = (30u64..50).chain(25..75).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn merge_runs_with_respects_config() {
        let device = device_b8();
        let runs: Vec<ExtVec<u64>> = (0..4u64)
            .map(|i| {
                let data: Vec<u64> = (0..100).map(|j| j * 4 + i).collect();
                ExtVec::from_slice(device.clone(), &data).unwrap()
            })
            .collect();
        let cfg = SortConfig::new(64).with_overlap(OverlapConfig::symmetric(2));
        let budget = MemBudget::new(64 + 4 * 2 * 8 + 2 * 8);
        let out = merge_runs_with(&runs, &budget, &cfg, |a, b| a < b).unwrap();
        assert_eq!(out.to_vec().unwrap(), (0..400).collect::<Vec<u64>>());
    }
}

#[cfg(test)]
mod multi_disk_tests {
    use super::*;
    use crate::SortConfig;
    use pdm::{BlockDevice, DiskArray, FileDisk, Placement, SharedDevice};
    use rand::prelude::*;

    fn random_input(device: &SharedDevice, n: u64, seed: u64) -> (ExtVec<u64>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        (ExtVec::from_slice(device.clone(), &data).unwrap(), data)
    }

    #[test]
    fn sorts_on_striped_array() {
        let arr = DiskArray::new_ram(4, 64, Placement::Striped);
        let device = arr.clone() as SharedDevice;
        assert_eq!(device.block_size(), 256);
        let (input, mut data) = random_input(&device, 5000, 21);
        let out = merge_sort(&input, &SortConfig::new(512)).unwrap();
        data.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), data);
        // Striping: every disk carries the same transfer count.
        let snap = device.stats().snapshot();
        for d in 1..4 {
            assert_eq!(snap.reads_on(0), snap.reads_on(d));
            assert_eq!(snap.writes_on(0), snap.writes_on(d));
        }
        assert_eq!(snap.parallel_time() * 4, snap.total());
    }

    #[test]
    fn sorts_on_independent_array_with_balanced_load() {
        let arr = DiskArray::new_ram(4, 64, Placement::Independent);
        let device = arr.clone() as SharedDevice;
        assert_eq!(device.block_size(), 64);
        let (input, mut data) = random_input(&device, 5000, 22);
        let out = merge_sort(&input, &SortConfig::new(512)).unwrap();
        data.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), data);
        // Round-robin placement keeps the disks within ~25% of each other.
        let snap = device.stats().snapshot();
        let per: Vec<u64> = (0..4)
            .map(|d| snap.reads_on(d) + snap.writes_on(d))
            .collect();
        let (lo, hi) = (per.iter().min().unwrap(), per.iter().max().unwrap());
        assert!(*hi as f64 <= 1.25 * *lo as f64, "imbalanced: {per:?}");
        assert!(
            snap.parallel_time() <= snap.total() / 3,
            "no parallel speedup: {per:?}"
        );
    }

    #[test]
    fn sorts_on_file_disk() {
        let mut path = std::env::temp_dir();
        path.push(format!("emsort-file-{}.bin", std::process::id()));
        let device = FileDisk::create(&path, 512).unwrap() as SharedDevice;
        let (input, mut data) = random_input(&device, 20_000, 23);
        let out = merge_sort(&input, &SortConfig::new(1024)).unwrap();
        data.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), data);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn overlapped_pipeline_matches_sync_output_and_per_disk_counts() {
        // The tentpole invariant: switching on worker threads, read-ahead,
        // write-behind and forecasting moves wall-clock time only — every
        // disk performs exactly the transfers of the synchronous pipeline.
        use crate::OverlapConfig;
        use pdm::IoMode;
        for placement in [Placement::Striped, Placement::Independent] {
            let d = 4;
            let sync_dev = DiskArray::new_ram(d, 64, placement) as SharedDevice;
            let ov_dev =
                DiskArray::new_ram_with(d, 64, placement, IoMode::Overlapped) as SharedDevice;
            let (sync_in, _) = random_input(&sync_dev, 5000, 31);
            let (ov_in, mut data) = random_input(&ov_dev, 5000, 31);
            let sync_cfg = SortConfig::new(512).with_overlap(OverlapConfig::off());
            let ov_cfg = SortConfig::new(512).with_overlap(OverlapConfig::symmetric(2));
            let before_sync = sync_dev.stats().snapshot();
            let before_ov = ov_dev.stats().snapshot();
            let sync_out = merge_sort(&sync_in, &sync_cfg).unwrap();
            let ov_out = merge_sort(&ov_in, &ov_cfg).unwrap();
            data.sort_unstable();
            assert_eq!(sync_out.to_vec().unwrap(), data);
            assert_eq!(ov_out.to_vec().unwrap(), data, "{placement:?}");
            let ds = sync_dev.stats().snapshot().since(&before_sync);
            let dov = ov_dev.stats().snapshot().since(&before_ov);
            for lane in 0..d {
                assert_eq!(
                    ds.reads_on(lane),
                    dov.reads_on(lane),
                    "{placement:?} lane {lane}"
                );
                assert_eq!(
                    ds.writes_on(lane),
                    dov.writes_on(lane),
                    "{placement:?} lane {lane}"
                );
            }
            assert_eq!(ds.parallel_time(), dov.parallel_time());
            assert_eq!(
                dov.prefetch_wasted(),
                0,
                "sort consumes every prefetched block"
            );
            assert!(
                dov.forecast_issued() > 0,
                "{placement:?}: forecasting active"
            );
        }
    }

    #[test]
    fn striped_fan_in_is_reduced() {
        // The model-level mechanism behind experiment F5: same memory in
        // bytes, but the striped logical block is D times bigger, so the
        // fan-in drops by D.
        let mem_bytes = 64 * 64; // 64 physical blocks' worth
        let striped = DiskArray::new_ram(8, 64, Placement::Striped);
        let indep = DiskArray::new_ram(8, 64, Placement::Independent);
        let m_records = mem_bytes / 8;
        let sc = SortConfig::new(m_records);
        let fan_striped = sc.effective_fan_in(striped.block_size() / 8);
        let fan_indep = sc.effective_fan_in(indep.block_size() / 8);
        assert_eq!(fan_indep, 63);
        assert_eq!(fan_striped, 7);
    }
}
