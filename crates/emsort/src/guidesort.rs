//! Guided merging: a static prefetch schedule in place of forecasting.
//!
//! Hagerup's *Guidesort* observes that the entire block-fetch order of a
//! k-way merge is determined **before the merge starts**: a run's block is
//! first demanded when its leading record becomes the merge winner, and the
//! leading records of every block are already resident (the forecast
//! metadata recorded when each run was written, see
//! [`em_core::ExtVec::block_head`]).  Sorting all `(leading key, run)` pairs
//! once therefore yields a *guide sequence* — the exact order in which the
//! merge will open blocks — and prefetching can simply walk that sequence,
//! with no per-pump key comparisons at all.
//!
//! Contrast with the [`Forecaster`](crate::forecast::Forecaster): the
//! forecaster re-derives the next most urgent block dynamically on every
//! pump (`O(k)` comparisons each), which lets it react to per-lane queue
//! pressure; the guide pays `O(total blocks · log)` once up front and then
//! issues prefetches by table lookup.  Both are pure *scheduling*: every
//! block either submits is one the demand-paged merge would read anyway,
//! merely issued earlier, so transfer counts — and of course the merged
//! record sequence — are identical across forecasting, guiding, and plain
//! demand paging.  The A/B race between the two is experiment F19.

use std::cell::Cell;
use std::sync::Arc;

use em_core::{BudgetGuard, ExtVec, ExtVecReader, MemBudget, Record};

use crate::runs::cmp_from_less;

/// The guide sequence of one k-way merge plus the shared prefetch pool it
/// feeds, built once from the runs' resident block-head metadata.
///
/// [`pump`](Self::pump) keeps up to `pool` blocks in flight across all
/// readers by submitting `prefetch_one` calls in guide order.  A guide entry
/// whose block was already demand-read simply advances that run's reader to
/// its next unfetched block — still a block the merge needs, just fetched
/// slightly ahead of the guide — so the schedule degrades gracefully and
/// never fetches a block the merge would not read.
pub(crate) struct GuideScheduler {
    pool: usize,
    /// Run index of each block in guide order (smallest leading key first,
    /// ties toward the lower run index — the merge's own tie rule).
    plan: Vec<u32>,
    /// Next unconsumed guide entry.
    next: Cell<usize>,
    _reserve: Option<BudgetGuard>,
}

impl GuideScheduler {
    /// Build the guide over `parts` (each a run and the record offset the
    /// merge enters it at) and charge up to `k·depth` blocks of prefetch
    /// pool from `budget` headroom, exactly like the forecaster — degrading
    /// to zero pool (pure demand paging) when the budget is short.
    ///
    /// Callers must ensure every part [`has_block_heads`]
    /// (em_core::ExtVec::has_block_heads); blocks wholly before a part's
    /// start offset are excluded from the guide (the merge never opens
    /// them).
    pub fn new<R, F>(
        budget: &Arc<MemBudget>,
        parts: &[(&ExtVec<R>, u64)],
        depth: usize,
        less: F,
    ) -> Self
    where
        R: Record,
        F: Fn(&R, &R) -> bool + Copy,
    {
        let k = parts.len();
        let per_block = parts.first().map_or(1, |(r, _)| r.per_block()).max(1);
        let reserve = budget.try_charge_units(k * depth, per_block);
        let pool = reserve.as_ref().map_or(0, |g| g.records() / per_block);

        // One guide entry per block the merge will open, seeded run-major so
        // the stable sort below keeps a run's equal-head blocks in file
        // order and resolves cross-run ties toward the lower run index.
        let mut entries: Vec<(u32, u32)> = Vec::new(); // (run, block)
        for (run, (part, start)) in parts.iter().enumerate() {
            let first = (*start as usize) / part.per_block().max(1);
            for bi in first..part.num_blocks() {
                entries.push((run as u32, bi as u32));
            }
        }
        entries.sort_by(|a, b| {
            let ha = parts[a.0 as usize].0.block_head(a.1 as usize);
            let hb = parts[b.0 as usize].0.block_head(b.1 as usize);
            match (ha, hb) {
                (Some(x), Some(y)) => cmp_from_less(less, x, y),
                // Unreachable under the `has_block_heads` precondition, but
                // degrade deterministically rather than panic.
                _ => std::cmp::Ordering::Equal,
            }
        });
        GuideScheduler {
            pool,
            plan: entries.into_iter().map(|(run, _)| run).collect(),
            next: Cell::new(0),
            _reserve: reserve,
        }
    }

    /// Blocks the pool may keep in flight.
    pub fn pool(&self) -> usize {
        self.pool
    }

    /// Top the pool up by submitting prefetches in guide order.  Entries
    /// whose run has no unfetched block left (fully submitted, or drained by
    /// demand reads) are consumed without effect.
    pub fn pump<R: Record>(&self, readers: &mut [ExtVecReader<'_, R>]) {
        if self.pool == 0 {
            return;
        }
        let mut in_flight: usize = readers.iter().map(|r| r.in_flight()).sum();
        let mut next = self.next.get();
        while in_flight < self.pool && next < self.plan.len() {
            let run = self.plan[next] as usize;
            next += 1;
            if readers[run].prefetch_one() {
                in_flight += 1;
            }
        }
        self.next.set(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::EmConfig;

    /// Two runs, B = 8: run 0 holds small keys, run 1 large ones.  The guide
    /// must order all of run 0's blocks before run 1's, so the whole pool
    /// goes to run 0 first — the same behaviour the forecaster converges to
    /// dynamically.
    #[test]
    fn guide_orders_blocks_by_leading_key() {
        let cfg = EmConfig::new(64, 16);
        let device = cfg.ram_disk();
        let small: Vec<u64> = (0..32).collect();
        let large: Vec<u64> = (1000..1032).collect();
        let a = ExtVec::from_slice(device.clone(), &small).unwrap();
        let b = ExtVec::from_slice(device.clone(), &large).unwrap();
        let budget = MemBudget::new(64);
        let parts = [(&a, 0u64), (&b, 0u64)];
        let g = GuideScheduler::new(&budget, &parts, 2, |x: &u64, y: &u64| x < y);
        assert_eq!(g.pool(), 4);
        assert_eq!(g.plan, vec![0, 0, 0, 0, 1, 1, 1, 1]);

        let mut readers = vec![
            a.reader_forecast(0, g.pool()),
            b.reader_forecast(0, g.pool()),
        ];
        g.pump(&mut readers);
        assert_eq!(readers[0].in_flight(), 4);
        assert_eq!(readers[1].in_flight(), 0);
        while readers[0].try_next().unwrap().is_some() {
            g.pump(&mut readers);
        }
        assert_eq!(readers[1].in_flight(), 4);
        while readers[1].try_next().unwrap().is_some() {}
        let snap = device.stats().snapshot();
        assert_eq!(snap.prefetch_wasted(), 0, "the guide never over-fetches");
        assert_eq!(snap.forecast_issued(), 8);
        assert_eq!(snap.forecast_hits(), 8);
    }

    #[test]
    fn interleaved_heads_interleave_the_guide() {
        let cfg = EmConfig::new(64, 16);
        let device = cfg.ram_disk();
        // Block heads: run 0 → 0, 20, 40, 60; run 1 → 10, 30, 50, 70.
        let r0: Vec<u64> = (0..32).map(|i| (i / 8) * 20 + i % 8).collect();
        let r1: Vec<u64> = (0..32).map(|i| 10 + (i / 8) * 20 + i % 8).collect();
        let a = ExtVec::from_slice(device.clone(), &r0).unwrap();
        let b = ExtVec::from_slice(device.clone(), &r1).unwrap();
        let budget = MemBudget::new(1000);
        let parts = [(&a, 0u64), (&b, 0u64)];
        let g = GuideScheduler::new(&budget, &parts, 4, |x: &u64, y: &u64| x < y);
        assert_eq!(g.plan, vec![0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn equal_heads_resolve_toward_lower_run() {
        let cfg = EmConfig::new(64, 16);
        let device = cfg.ram_disk();
        let same: Vec<u64> = vec![5; 16]; // two blocks, both heads 5
        let a = ExtVec::from_slice(device.clone(), &same).unwrap();
        let b = ExtVec::from_slice(device.clone(), &same).unwrap();
        let budget = MemBudget::new(1000);
        let parts = [(&a, 0u64), (&b, 0u64)];
        let g = GuideScheduler::new(&budget, &parts, 2, |x: &u64, y: &u64| x < y);
        assert_eq!(g.plan, vec![0, 0, 1, 1], "stable: run 0 wins every tie");
    }

    #[test]
    fn mid_run_offsets_skip_consumed_blocks() {
        let cfg = EmConfig::new(64, 16);
        let device = cfg.ram_disk();
        let a = ExtVec::from_slice(device.clone(), &(0u64..32).collect::<Vec<_>>()).unwrap();
        let budget = MemBudget::new(1000);
        // Entering at record 17 (block 2 of 4): blocks 0 and 1 are excluded.
        let parts = [(&a, 17u64)];
        let g = GuideScheduler::new(&budget, &parts, 2, |x: &u64, y: &u64| x < y);
        assert_eq!(g.plan.len(), 2);
    }

    #[test]
    fn zero_pool_is_a_noop() {
        let cfg = EmConfig::new(64, 16);
        let device = cfg.ram_disk();
        let a = ExtVec::from_slice(device.clone(), &(0u64..16).collect::<Vec<_>>()).unwrap();
        let budget = MemBudget::new(4); // less than one block of headroom
        let parts = [(&a, 0u64)];
        let g = GuideScheduler::new(&budget, &parts, 2, |x: &u64, y: &u64| x < y);
        assert_eq!(g.pool(), 0);
        let mut readers = vec![a.reader_forecast(0, 0)];
        g.pump(&mut readers);
        assert_eq!(readers[0].in_flight(), 0);
        assert_eq!(readers[0].by_ref().count(), 16);
    }
}
