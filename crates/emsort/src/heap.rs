//! A binary min-heap parameterized by a comparator function.
//!
//! `std::collections::BinaryHeap` requires `Ord`, but the sorts in this crate
//! accept arbitrary comparators (`merge_sort_by` etc.), so we keep a small
//! sift-based heap of our own.  It is also used by replacement selection,
//! which needs the classic two-zone ("current run" / "next run") trick.

/// Min-heap over `T` with an explicit comparator.
pub(crate) struct MinHeap<T, F> {
    items: Vec<T>,
    less: F,
}

impl<T, F: FnMut(&T, &T) -> bool> MinHeap<T, F> {
    /// Create an empty heap; `less(a, b)` must return true iff `a` orders
    /// strictly before `b`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn new(less: F) -> Self {
        MinHeap {
            items: Vec::new(),
            less,
        }
    }

    /// Create with pre-reserved capacity.
    pub fn with_capacity(cap: usize, less: F) -> Self {
        MinHeap {
            items: Vec::with_capacity(cap),
            less,
        }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn peek(&self) -> Option<&T> {
        self.items.first()
    }

    pub fn push(&mut self, item: T) {
        self.items.push(item);
        self.sift_up(self.items.len() - 1);
    }

    pub fn pop(&mut self) -> Option<T> {
        if self.items.is_empty() {
            return None;
        }
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        let top = self.items.pop();
        if !self.items.is_empty() {
            self.sift_down(0);
        }
        top
    }

    /// Replace the minimum with `item` in one sift (cheaper than pop+push).
    /// Returns the old minimum.  Panics on an empty heap.
    pub fn replace_min(&mut self, item: T) -> T {
        assert!(!self.items.is_empty(), "replace_min on empty heap");
        let old = std::mem::replace(&mut self.items[0], item);
        self.sift_down(0);
        old
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if (self.less)(&self.items[i], &self.items[parent]) {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.items.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && (self.less)(&self.items[l], &self.items[smallest]) {
                smallest = l;
            }
            if r < n && (self.less)(&self.items[r], &self.items[smallest]) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.items.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn drains_in_order() {
        let mut h = MinHeap::new(|a: &i32, b: &i32| a < b);
        for x in [5, 1, 4, 1, 3, 9, 2, 6] {
            h.push(x);
        }
        let mut out = Vec::new();
        while let Some(x) = h.pop() {
            out.push(x);
        }
        assert_eq!(out, vec![1, 1, 2, 3, 4, 5, 6, 9]);
    }

    #[test]
    fn custom_comparator_reverses() {
        let mut h = MinHeap::new(|a: &i32, b: &i32| a > b); // max-heap
        for x in [3, 7, 1] {
            h.push(x);
        }
        assert_eq!(h.pop(), Some(7));
        assert_eq!(h.pop(), Some(3));
        assert_eq!(h.pop(), Some(1));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn replace_min_keeps_heap_property() {
        let mut h = MinHeap::new(|a: &i32, b: &i32| a < b);
        for x in [4, 8, 6] {
            h.push(x);
        }
        assert_eq!(h.replace_min(10), 4);
        assert_eq!(h.pop(), Some(6));
        assert_eq!(h.pop(), Some(8));
        assert_eq!(h.pop(), Some(10));
    }

    #[test]
    fn randomized_against_sorted_vec() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let mut v: Vec<u32> = (0..200).map(|_| rng.gen_range(0..1000)).collect();
            let mut h = MinHeap::with_capacity(v.len(), |a: &u32, b: &u32| a < b);
            for &x in &v {
                h.push(x);
            }
            v.sort_unstable();
            let drained: Vec<u32> = std::iter::from_fn(|| h.pop()).collect();
            assert_eq!(drained, v);
        }
    }

    #[test]
    #[should_panic(expected = "replace_min on empty heap")]
    fn replace_min_empty_panics() {
        let mut h = MinHeap::new(|a: &i32, b: &i32| a < b);
        h.replace_min(1);
    }
}
