//! Run formation: turning unsorted input into sorted runs.
//!
//! Merge sort's first pass produces sorted runs that later passes merge.
//! The survey discusses two classic strategies, both implemented here so the
//! experiments can compare them:
//!
//! * **Load–sort–store** — fill memory (`M` records), sort internally, write
//!   out; produces `⌈N/M⌉` runs of exactly `M` records (except the last).
//! * **Replacement selection** — keep an `M`-record selection heap; each
//!   emitted record is replaced by a fresh input record, which joins the
//!   current run if it can still be emitted in order, or is earmarked for the
//!   next run otherwise.  On random input the expected run length is `2M`
//!   (Knuth's snow-plough argument), halving the number of runs and sometimes
//!   saving an entire merge pass — the ablation of experiment F1.
//!
//! Load–sort–store additionally parallelizes the in-memory sort across
//! [`SortConfig::run_threads`] scoped worker threads: the `M`-record chunk is
//! split into contiguous pieces, each piece is stably sorted on its own
//! thread, and the pieces are merged straight into the run writer with a
//! piece-index tie-break.  Because the pieces are contiguous and the merge is
//! stable, the written run is **byte-identical** to the sequential
//! `sort_by` — thread count changes wall-clock time only, never run contents
//! or I/O counts (the equivalence tests below assert exactly this).

use std::sync::{mpsc, Arc, Mutex};

use em_core::{ExtVec, ExtVecWriter, IoWaitSink, MemBudget, Record};
use pdm::Result;

use crate::heap::MinHeap;
use crate::losertree::LoserTree;
use crate::{OverlapConfig, SortConfig};

/// Pieces smaller than this sort faster than a thread spawn costs; chunks
/// below `2·MIN_PIECE` records stay sequential.
const MIN_PIECE: usize = 4096;

/// Strategy for the run-formation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunFormation {
    /// Fill memory, sort, write: runs of exactly `M` records.
    #[default]
    LoadSort,
    /// Selection heap with run tagging: runs average `2M` on random input.
    ReplacementSelection,
    /// RAM-efficient load–sort–store in the spirit of Arge & Thorup: each
    /// `B`-record block is handed to a [`SortConfig::run_threads`]-wide
    /// sorter pool the moment its reads land (so sort CPU hides under the
    /// input stream's read-ahead *and* spreads across cores), then the
    /// `M/B` sorted blocks are loser-tree-merged *streaming* into the run
    /// writer — the
    /// first output block is in flight after `O(B log(M/B))` comparisons
    /// instead of after the full `O(M log M)` monolithic sort, so
    /// write-behind overlaps the remaining merge CPU.  Runs are
    /// byte-identical to [`LoadSort`] (stable block sorts + stable
    /// block-index tie-break = the stable full sort) and I/O counts are
    /// unchanged; only the CPU/I/O overlap profile differs.
    RamEfficient,
}

/// Produce sorted runs from `input` under `cfg`'s memory budget.
///
/// Each returned [`ExtVec`] is sorted according to `less` and lives on the
/// same device as the input.  The concatenation of the runs is a permutation
/// of the input.  Costs one read and one write of every block
/// (`2·⌈N/B⌉` I/Os) — with or without overlap; `cfg.overlap` only changes
/// *when* transfers are issued, never how many.
pub fn form_runs<R, F>(input: &ExtVec<R>, cfg: &SortConfig, less: F) -> Result<Vec<ExtVec<R>>>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy + Send,
{
    form_runs_impl(input, cfg, less, None)
}

pub(crate) fn form_runs_impl<R, F>(
    input: &ExtVec<R>,
    cfg: &SortConfig,
    less: F,
    io_wait: Option<&IoWaitSink>,
) -> Result<Vec<ExtVec<R>>>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy + Send,
{
    // Overlap depths are per disk: on an independent-placement array the
    // one input stream and one output stream each deepen their queues by the
    // lane count, so every member disk keeps `read_ahead`/`write_behind`
    // transfers in flight rather than the array sharing that depth.
    let ov = cfg.overlap.for_lanes(input.device().stream_lanes());
    // The overlap buffers (one input stream, one output stream) live in
    // budget headroom beyond the algorithm's M working records; they shrink
    // to fit whatever is actually available.
    let reserve = (ov.read_ahead + ov.write_behind) * input.per_block();
    let budget = MemBudget::new(cfg.mem_records + reserve);
    match cfg.run_formation {
        RunFormation::LoadSort => {
            let threads = cfg.effective_run_threads();
            load_sort_runs(input, &budget, cfg.mem_records, ov, threads, io_wait, less)
        }
        RunFormation::ReplacementSelection => {
            replacement_selection_runs(input, &budget, cfg.mem_records, ov, io_wait, less)
        }
        RunFormation::RamEfficient => {
            let threads = cfg.effective_run_threads();
            ram_efficient_runs(input, &budget, cfg.mem_records, ov, threads, io_wait, less)
        }
    }
}

fn load_sort_runs<R, F>(
    input: &ExtVec<R>,
    budget: &Arc<MemBudget>,
    m: usize,
    ov: OverlapConfig,
    threads: usize,
    io_wait: Option<&IoWaitSink>,
    less: F,
) -> Result<Vec<ExtVec<R>>>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy + Send,
{
    assert!(
        m >= 2 * input.per_block(),
        "memory must hold at least two blocks"
    );
    let _charge = budget.charge(m);
    let mut runs = Vec::new();
    let mut chunk: Vec<R> = Vec::with_capacity(m);
    let mut reader = input.reader_at_prefetch(0, ov.read_ahead, budget);
    if let Some(sink) = io_wait {
        reader.set_io_wait_sink(sink.clone());
    }
    loop {
        chunk.clear();
        while chunk.len() < m {
            match reader.try_next()? {
                Some(r) => chunk.push(r),
                None => break,
            }
        }
        if chunk.is_empty() {
            break;
        }
        // Stagger each run's start lane so runs of exactly M/B blocks don't
        // all place block j on the same disk (see BlockDevice docs).
        input.device().direct_next_stream(runs.len());
        let mut w =
            ExtVecWriter::with_write_behind(input.device().clone(), ov.write_behind, budget);
        if let Some(sink) = io_wait {
            w.set_io_wait_sink(sink.clone());
        }
        write_sorted_chunk(&mut chunk, threads, less, &mut w)?;
        runs.push(w.finish()?);
    }
    Ok(runs)
}

/// Sort `chunk` and push it to `w`, using up to `threads` scoped workers.
///
/// The parallel path splits the chunk into contiguous pieces, stably sorts
/// each piece on its own thread, and merges the pieces into the writer with
/// a [`LoserTree`] whose ties resolve toward the lower piece index.  Equal
/// records therefore leave in original-position order — exactly the
/// sequential stable `sort_by` output.
pub(crate) fn write_sorted_chunk<R, F>(
    chunk: &mut Vec<R>,
    threads: usize,
    less: F,
    w: &mut ExtVecWriter<R>,
) -> Result<()>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy + Send,
{
    let t = threads.min(chunk.len() / MIN_PIECE);
    if t <= 1 {
        chunk.sort_by(|a, b| cmp_from_less(less, a, b));
        for r in chunk.drain(..) {
            w.push(r)?;
        }
        return Ok(());
    }
    let piece_len = chunk.len().div_ceil(t);
    std::thread::scope(|s| {
        for piece in chunk.chunks_mut(piece_len) {
            s.spawn(move || piece.sort_by(|a, b| cmp_from_less(less, a, b)));
        }
    });
    merge_sorted_pieces(chunk, piece_len, less, w)
}

/// Loser-tree-merge the contiguous sorted `piece_len`-record pieces of
/// `chunk` straight into the writer — no scratch buffer, so memory stays at
/// the chunk's records (plus one in-tree key per piece).  Ties resolve
/// toward the lower piece index, so stably-sorted contiguous pieces merge
/// into exactly the stable full sort of `chunk`.
fn merge_sorted_pieces<R, F>(
    chunk: &mut Vec<R>,
    piece_len: usize,
    less: F,
    w: &mut ExtVecWriter<R>,
) -> Result<()>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    let t = chunk.len().div_ceil(piece_len);
    let starts: Vec<usize> = (0..t).map(|i| i * piece_len).collect();
    let ends: Vec<usize> = (0..t)
        .map(|i| ((i + 1) * piece_len).min(chunk.len()))
        .collect();
    let mut cursors: Vec<usize> = starts.iter().map(|&s| s + 1).collect();
    let keys: Vec<Option<R>> = (0..t)
        .map(|i| (starts[i] < ends[i]).then(|| chunk[starts[i]].clone()))
        .collect();
    let mut lt = LoserTree::new(keys, less);
    while let Some(wi) = lt.winner() {
        let next = (cursors[wi] < ends[wi]).then(|| chunk[cursors[wi]].clone());
        cursors[wi] += 1;
        w.push(lt.replace_winner(next))?;
    }
    chunk.clear();
    Ok(())
}

/// [`RunFormation::RamEfficient`]: hand each block to a sorter pool as its
/// reads land, then stream an `M/B`-way loser-tree merge of the sorted
/// blocks into the run writer.  See the enum variant's documentation for why
/// the runs come out byte-identical to [`RunFormation::LoadSort`].
fn ram_efficient_runs<R, F>(
    input: &ExtVec<R>,
    budget: &Arc<MemBudget>,
    m: usize,
    ov: OverlapConfig,
    threads: usize,
    io_wait: Option<&IoWaitSink>,
    less: F,
) -> Result<Vec<ExtVec<R>>>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy + Send,
{
    let b = input.per_block();
    assert!(m >= 2 * b, "memory must hold at least two blocks");
    let _charge = budget.charge(m);
    // More sorters than blocks per chunk would just idle.
    let t = threads.clamp(1, m.div_ceil(b));
    let mut runs = Vec::new();
    let mut reader = input.reader_at_prefetch(0, ov.read_ahead, budget);
    if let Some(sink) = io_wait {
        reader.set_io_wait_sink(sink.clone());
    }
    loop {
        // Read the chunk as B-record blocks and farm each completed block to
        // a sorter worker the moment its reads land: the reader's prefetch
        // keeps the next block's transfer in flight while the pool keeps the
        // sort CPU off the read path entirely.  The blocks in flight always
        // belong to the current chunk, so resident records stay within M.
        let (work_tx, work_rx) = mpsc::channel::<(usize, Vec<R>)>();
        let (done_tx, done_rx) = mpsc::channel::<(usize, Vec<R>)>();
        let work_rx = Mutex::new(work_rx);
        let n_blocks = std::thread::scope(|s| {
            for _ in 0..t {
                let done = done_tx.clone();
                let work = &work_rx;
                s.spawn(move || loop {
                    // The lock is held only across `recv` — the sort itself
                    // runs unlocked, so workers sort concurrently.
                    let job = match work.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => return,
                    };
                    let Ok((idx, mut block)) = job else { return };
                    block.sort_by(|x, y| cmp_from_less(less, x, y));
                    if done.send((idx, block)).is_err() {
                        return;
                    }
                });
            }
            drop(done_tx);
            let mut sent = 0usize;
            let mut block: Vec<R> = Vec::with_capacity(b);
            let mut total = 0usize;
            while total < m {
                match reader.try_next() {
                    Ok(Some(r)) => {
                        block.push(r);
                        total += 1;
                        if block.len() == b {
                            let full = std::mem::replace(&mut block, Vec::with_capacity(b));
                            let _ = work_tx.send((sent, full));
                            sent += 1;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        drop(work_tx);
                        return Err(e);
                    }
                }
            }
            if !block.is_empty() {
                let _ = work_tx.send((sent, block));
                sent += 1;
            }
            drop(work_tx);
            Ok(sent)
        })?;
        if n_blocks == 0 {
            break;
        }
        // Every sender is gone once the scope joins, so the done channel
        // holds exactly this chunk's sorted blocks (in completion order).
        let mut sorted: Vec<(usize, Vec<R>)> = done_rx.try_iter().collect();
        sorted.sort_unstable_by_key(|&(idx, _)| idx);
        let mut blocks: Vec<Vec<R>> = sorted.into_iter().map(|(_, blk)| blk).collect();
        input.device().direct_next_stream(runs.len());
        let mut w =
            ExtVecWriter::with_write_behind(input.device().clone(), ov.write_behind, budget);
        if let Some(sink) = io_wait {
            w.set_io_wait_sink(sink.clone());
        }
        merge_sorted_blocks(&mut blocks, less, &mut w)?;
        runs.push(w.finish()?);
    }
    Ok(runs)
}

/// Loser-tree-merge independently sorted blocks straight into the writer,
/// ties resolving toward the lower block index — the same stability argument
/// as [`merge_sorted_pieces`], so the output is exactly the stable full sort
/// of the chunk the blocks were read from.
fn merge_sorted_blocks<R, F>(blocks: &mut [Vec<R>], less: F, w: &mut ExtVecWriter<R>) -> Result<()>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    let mut cursors = vec![1usize; blocks.len()];
    let keys: Vec<Option<R>> = blocks.iter().map(|blk| blk.first().cloned()).collect();
    let mut lt = LoserTree::new(keys, less);
    while let Some(wi) = lt.winner() {
        let next = blocks[wi].get(cursors[wi]).cloned();
        cursors[wi] += 1;
        w.push(lt.replace_winner(next))?;
    }
    for blk in blocks.iter_mut() {
        blk.clear();
    }
    Ok(())
}

fn replacement_selection_runs<R, F>(
    input: &ExtVec<R>,
    budget: &Arc<MemBudget>,
    m: usize,
    ov: OverlapConfig,
    io_wait: Option<&IoWaitSink>,
    less: F,
) -> Result<Vec<ExtVec<R>>>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    let b = input.per_block();
    assert!(
        m >= 4 * b,
        "replacement selection needs at least 4 blocks of memory"
    );
    // Heap gets M − 2B records; one block each for the input reader and the
    // run writer.
    let heap_cap = m - 2 * b;
    let _charge = budget.charge(m);

    // Heap entries are (run_id, record); an entry for a later run orders
    // after every entry of the current run.
    let mut heap: MinHeap<(u64, R), _> =
        MinHeap::with_capacity(heap_cap, move |a: &(u64, R), b: &(u64, R)| {
            a.0 < b.0 || (a.0 == b.0 && less(&a.1, &b.1))
        });

    let mut reader = input.reader_at_prefetch(0, ov.read_ahead, budget);
    if let Some(sink) = io_wait {
        reader.set_io_wait_sink(sink.clone());
    }
    while heap.len() < heap_cap {
        match reader.try_next()? {
            Some(r) => heap.push((0, r)),
            None => break,
        }
    }

    let mut runs = Vec::new();
    if heap.is_empty() {
        return Ok(runs);
    }

    let mut current_run = 0u64;
    input.device().direct_next_stream(runs.len());
    let mut writer =
        ExtVecWriter::with_write_behind(input.device().clone(), ov.write_behind, budget);
    if let Some(sink) = io_wait {
        writer.set_io_wait_sink(sink.clone());
    }
    let mut last_emitted: Option<R> = None;
    while let Some((run_id, out)) = heap.peek().map(|e| (e.0, e.1.clone())) {
        if run_id != current_run {
            // Current run is exhausted inside the heap; seal it.  Finish the
            // old writer *before* building the next one so its write-behind
            // reserve is back in the budget when the successor asks for it
            // (the interim plain writer is a free placeholder).
            let old = std::mem::replace(&mut writer, ExtVecWriter::new(input.device().clone()));
            runs.push(old.finish()?);
            input.device().direct_next_stream(runs.len());
            writer =
                ExtVecWriter::with_write_behind(input.device().clone(), ov.write_behind, budget);
            if let Some(sink) = io_wait {
                writer.set_io_wait_sink(sink.clone());
            }
            current_run = run_id;
            last_emitted = None;
        }
        let (_, rec) = match reader.try_next()? {
            Some(next) => {
                // Decide which run the replacement joins: it can extend the
                // current run only if it is not smaller than the record we
                // are about to emit (`out`, the heap head cloned above).
                let next_run = if less(&next, &out) {
                    current_run + 1
                } else {
                    current_run
                };
                heap.replace_min((next_run, next))
            }
            // `peek` above just succeeded, so `pop` cannot miss; stop
            // cleanly rather than panic if it ever does.
            None => match heap.pop() {
                Some(e) => e,
                None => break,
            },
        };
        debug_assert!(
            last_emitted.as_ref().is_none_or(|p| !less(&rec, p)),
            "replacement selection emitted out of order"
        );
        last_emitted = Some(rec.clone());
        writer.push(rec)?;
    }
    runs.push(writer.finish()?);
    Ok(runs)
}

/// Turn a strict-less predicate into a total `Ordering` (equal when neither
/// argument is less).
pub(crate) fn cmp_from_less<R, F>(less: F, a: &R, b: &R) -> std::cmp::Ordering
where
    F: Fn(&R, &R) -> bool,
{
    if less(a, b) {
        std::cmp::Ordering::Less
    } else if less(b, a) {
        std::cmp::Ordering::Greater
    } else {
        std::cmp::Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::EmConfig;
    use rand::prelude::*;

    fn setup(n: u64) -> (ExtVec<u64>, Vec<u64>) {
        let cfg = EmConfig::new(64, 8); // B = 8 u64s
        let device = cfg.ram_disk();
        let mut rng = StdRng::seed_from_u64(42);
        let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();
        (ExtVec::from_slice(device, &data).unwrap(), data)
    }

    fn check_runs(runs: &[ExtVec<u64>], original: &[u64]) {
        let mut all = Vec::new();
        for run in runs {
            let v = run.to_vec().unwrap();
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "run not sorted");
            all.extend(v);
        }
        let mut all_sorted = all.clone();
        all_sorted.sort_unstable();
        let mut orig_sorted = original.to_vec();
        orig_sorted.sort_unstable();
        assert_eq!(
            all_sorted, orig_sorted,
            "runs are not a permutation of input"
        );
    }

    #[test]
    fn load_sort_run_sizes() {
        let (input, data) = setup(100);
        let cfg = SortConfig::new(32); // M = 32 records → 4 runs of 32 + 1 of 4
        let runs = form_runs(&input, &cfg, |a, b| a < b).unwrap();
        assert_eq!(runs.len(), 4);
        assert!(runs[..3].iter().all(|r| r.len() == 32));
        assert_eq!(runs[3].len(), 4);
        check_runs(&runs, &data);
    }

    #[test]
    fn replacement_selection_longer_runs() {
        let (input, data) = setup(2000);
        let m = 128;
        let ls = form_runs(&input, &SortConfig::new(m), |a, b| a < b).unwrap();
        let rs = form_runs(
            &input,
            &SortConfig::new(m).with_run_formation(RunFormation::ReplacementSelection),
            |a, b| a < b,
        )
        .unwrap();
        check_runs(&ls, &data);
        check_runs(&rs, &data);
        // Snow-plough: RS runs average ~2·heap = ~2(M−2B); expect clearly
        // fewer runs than load-sort.
        assert!(
            rs.len() * 3 <= ls.len() * 2,
            "expected replacement selection to produce ≥1.5× fewer runs: rs={} ls={}",
            rs.len(),
            ls.len()
        );
    }

    #[test]
    fn replacement_selection_sorted_input_single_run() {
        let cfg = EmConfig::new(64, 8);
        let device = cfg.ram_disk();
        let data: Vec<u64> = (0..500).collect();
        let input = ExtVec::from_slice(device, &data).unwrap();
        let runs = form_runs(
            &input,
            &SortConfig::new(40).with_run_formation(RunFormation::ReplacementSelection),
            |a, b| a < b,
        )
        .unwrap();
        assert_eq!(runs.len(), 1, "sorted input snow-ploughs into one run");
        assert_eq!(runs[0].to_vec().unwrap(), data);
    }

    #[test]
    fn reverse_sorted_input_rs_runs_of_heap_size() {
        let cfg = EmConfig::new(64, 8);
        let device = cfg.ram_disk();
        let data: Vec<u64> = (0..400).rev().collect();
        let input = ExtVec::from_slice(device, &data).unwrap();
        let m = 48; // heap = 48 − 16 = 32
        let runs = form_runs(
            &input,
            &SortConfig::new(m).with_run_formation(RunFormation::ReplacementSelection),
            |a, b| a < b,
        )
        .unwrap();
        // Worst case: every replacement starts a new run → runs of exactly
        // heap size.
        assert_eq!(runs.len(), 400 / 32 + 1);
        let mut all = Vec::new();
        for r in &runs {
            all.extend(r.to_vec().unwrap());
        }
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_no_runs() {
        let cfg = EmConfig::new(64, 8);
        let input: ExtVec<u64> = ExtVec::new(cfg.ram_disk());
        for rf in [
            RunFormation::LoadSort,
            RunFormation::ReplacementSelection,
            RunFormation::RamEfficient,
        ] {
            let runs = form_runs(
                &input,
                &SortConfig::new(64).with_run_formation(rf),
                |a, b| a < b,
            )
            .unwrap();
            assert!(runs.is_empty());
        }
    }

    #[test]
    fn ram_efficient_runs_byte_identical_to_load_sort() {
        let cfg = EmConfig::new(64, 8);
        let device = cfg.ram_disk();
        let mut rng = StdRng::seed_from_u64(99);
        // Heavy duplication: any instability in the block merge would
        // reorder the (key, position) pairs and fail the equality.
        let data: Vec<(u64, u64)> = (0..5_000u64)
            .map(|i| (rng.gen_range(0..32u64), i))
            .collect();
        let input = ExtVec::from_slice(device.clone(), &data).unwrap();
        let base = SortConfig::new(256).with_run_threads(1);
        let before = device.stats().snapshot();
        let ls = form_runs(&input, &base, |a: &(u64, u64), b| a.0 < b.0).unwrap();
        let mid = device.stats().snapshot();
        let re = form_runs(
            &input,
            &base.with_run_formation(RunFormation::RamEfficient),
            |a: &(u64, u64), b| a.0 < b.0,
        )
        .unwrap();
        let after = device.stats().snapshot();
        let (d_ls, d_re) = (mid.since(&before), after.since(&mid));
        assert_eq!(d_ls.reads(), d_re.reads());
        assert_eq!(d_ls.writes(), d_re.writes());
        assert_eq!(ls.len(), re.len());
        for (a, b) in ls.iter().zip(&re) {
            assert_eq!(
                a.to_vec().unwrap(),
                b.to_vec().unwrap(),
                "RAM-efficient run differs from load-sort"
            );
        }
        for r in ls.into_iter().chain(re) {
            r.free().unwrap();
        }
    }

    #[test]
    fn run_formation_io_is_two_scans() {
        let (input, _) = setup(512);
        let device = input.device().clone();
        for rf in [
            RunFormation::LoadSort,
            RunFormation::ReplacementSelection,
            RunFormation::RamEfficient,
        ] {
            let before = device.stats().snapshot();
            let runs = form_runs(
                &input,
                &SortConfig::new(64).with_run_formation(rf),
                |a, b| a < b,
            )
            .unwrap();
            let d = device.stats().snapshot().since(&before);
            assert_eq!(d.reads(), 64, "one read per input block");
            // Writes: one per run block; runs may have partial last blocks.
            let run_blocks: u64 = runs.iter().map(|r| r.num_blocks() as u64).sum();
            assert_eq!(d.writes(), run_blocks);
            assert!(run_blocks <= 64 + runs.len() as u64);
        }
    }

    #[test]
    fn overlap_changes_neither_runs_nor_io_counts() {
        let (input, _) = setup(512);
        let device = input.device().clone();
        for rf in [
            RunFormation::LoadSort,
            RunFormation::ReplacementSelection,
            RunFormation::RamEfficient,
        ] {
            let base = SortConfig::new(64).with_run_formation(rf);
            let sync_cfg = base.with_overlap(OverlapConfig::off());
            let ov_cfg = base.with_overlap(OverlapConfig::symmetric(2));
            let before = device.stats().snapshot();
            let sync_runs = form_runs(&input, &sync_cfg, |a, b| a < b).unwrap();
            let mid = device.stats().snapshot();
            let ov_runs = form_runs(&input, &ov_cfg, |a, b| a < b).unwrap();
            let after = device.stats().snapshot();
            let (d_sync, d_ov) = (mid.since(&before), after.since(&mid));
            assert_eq!(
                d_sync.reads(),
                d_ov.reads(),
                "overlap changed read count ({rf:?})"
            );
            assert_eq!(
                d_sync.writes(),
                d_ov.writes(),
                "overlap changed write count ({rf:?})"
            );
            assert_eq!(sync_runs.len(), ov_runs.len());
            for (a, b) in sync_runs.iter().zip(&ov_runs) {
                assert_eq!(
                    a.to_vec().unwrap(),
                    b.to_vec().unwrap(),
                    "runs differ ({rf:?})"
                );
            }
            for r in sync_runs.into_iter().chain(ov_runs) {
                r.free().unwrap();
            }
        }
    }

    #[test]
    fn parallel_run_formation_is_byte_identical_to_sequential() {
        // M = 16 Ki records → chunks large enough to engage the scoped
        // worker threads; the written runs and I/O counts must not move.
        let cfg = EmConfig::new(64, 8);
        let device = cfg.ram_disk();
        let mut rng = StdRng::seed_from_u64(77);
        // Narrow key range → massive duplication, so any instability in the
        // piece merge would reorder records and fail the equality below.
        let data: Vec<(u64, u64)> = (0..40_000u64)
            .map(|i| (rng.gen_range(0..64u64), i))
            .collect();
        let input = ExtVec::from_slice(device.clone(), &data).unwrap();
        let m = 16 * 1024;
        let base = SortConfig::new(m);
        let before = device.stats().snapshot();
        let seq = form_runs(&input, &base.with_run_threads(1), |a: &(u64, u64), b| {
            a.0 < b.0
        })
        .unwrap();
        let mid = device.stats().snapshot();
        let par = form_runs(&input, &base.with_run_threads(4), |a: &(u64, u64), b| {
            a.0 < b.0
        })
        .unwrap();
        let after = device.stats().snapshot();
        let (d_seq, d_par) = (mid.since(&before), after.since(&mid));
        assert_eq!(d_seq.reads(), d_par.reads());
        assert_eq!(d_seq.writes(), d_par.writes());
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(
                a.to_vec().unwrap(),
                b.to_vec().unwrap(),
                "parallel run differs"
            );
        }
        for r in seq.into_iter().chain(par) {
            r.free().unwrap();
        }
    }

    #[test]
    fn custom_comparator_descending() {
        let (input, _) = setup(100);
        let runs = form_runs(&input, &SortConfig::new(64), |a, b| a > b).unwrap();
        for r in &runs {
            let v = r.to_vec().unwrap();
            assert!(v.windows(2).all(|w| w[0] >= w[1]));
        }
    }
}
