//! External selection: the k-th smallest record in `O(Scan(N))` expected
//! I/Os.
//!
//! One of the survey's batched problems that is strictly *easier* than
//! sorting: like internal quickselect, partition around a sampled pivot and
//! recurse into one side only, so the geometric series of scans sums to
//! `O(N/B)` expected.  The three-way (less / equal / greater) partition
//! guarantees progress on duplicate-heavy inputs.

use em_core::{ExtVec, ExtVecWriter, MemBudget, Record};
use pdm::Result;
use rand::prelude::*;

use crate::runs::cmp_from_less;
use crate::SortConfig;

/// Return the `k`-th smallest record of `input` (0-based, by natural
/// order).  Expected `O(Scan(N))` I/Os.
pub fn select<R: Record + Ord>(input: &ExtVec<R>, k: u64, cfg: &SortConfig) -> Result<R> {
    select_by(input, k, cfg, |a, b| a < b)
}

/// Return the `k`-th smallest record by a strict-less predicate.
pub fn select_by<R, F>(input: &ExtVec<R>, k: u64, cfg: &SortConfig, less: F) -> Result<R>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    assert!(
        k < input.len(),
        "selection index {k} out of range (len {})",
        input.len()
    );
    let budget = MemBudget::new(cfg.mem_records);
    let mut rng = StdRng::seed_from_u64(0x005E_1EC7);

    // First level reads from the borrowed input; afterwards we own the
    // shrinking candidate array.
    let (mut current, mut k) = {
        match select_level(input, k, &budget, less, &mut rng)? {
            Outcome::Found(r) => return Ok(r),
            Outcome::Recurse(next, k2) => (next, k2),
        }
    };
    loop {
        if current.len() as usize <= budget.capacity() {
            let _charge = budget.charge(current.len() as usize);
            let mut v = current.to_vec()?;
            v.sort_by(|a, b| cmp_from_less(less, a, b));
            let answer = v[k as usize].clone();
            current.free()?;
            return Ok(answer);
        }
        match select_level(&current, k, &budget, less, &mut rng)? {
            Outcome::Found(r) => {
                current.free()?;
                return Ok(r);
            }
            Outcome::Recurse(next, k2) => {
                current.free()?;
                current = next;
                k = k2;
            }
        }
    }
}

enum Outcome<R: Record> {
    Found(R),
    Recurse(ExtVec<R>, u64),
}

/// One partition level: pick a random pivot (one random access), then split
/// `data` into less / greater around it in a single scan, counting equals.
fn select_level<R, F>(
    data: &ExtVec<R>,
    k: u64,
    budget: &std::sync::Arc<MemBudget>,
    less: F,
    rng: &mut StdRng,
) -> Result<Outcome<R>>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    let pivot = data.get(rng.gen_range(0..data.len()))?;
    let device = data.device().clone();
    let mut lo: ExtVecWriter<R> = ExtVecWriter::new(device.clone());
    let mut hi: ExtVecWriter<R> = ExtVecWriter::new(device);
    let mut eq = 0u64;
    {
        let _charge = budget.charge(3 * data.per_block());
        let mut r = data.reader();
        while let Some(x) = r.try_next()? {
            if less(&x, &pivot) {
                lo.push(x)?;
            } else if less(&pivot, &x) {
                hi.push(x)?;
            } else {
                eq += 1;
            }
        }
    }
    let lo = lo.finish()?;
    let hi = hi.finish()?;
    let n_lo = lo.len();
    if k < n_lo {
        hi.free()?;
        Ok(Outcome::Recurse(lo, k))
    } else if k < n_lo + eq {
        lo.free()?;
        hi.free()?;
        Ok(Outcome::Found(pivot))
    } else {
        lo.free()?;
        Ok(Outcome::Recurse(hi, k - n_lo - eq))
    }
}

/// Convenience: the median (lower median for even lengths).
pub fn median<R: Record + Ord>(input: &ExtVec<R>, cfg: &SortConfig) -> Result<R> {
    select(input, (input.len() - 1) / 2, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::{bounds, EmConfig};

    fn device() -> pdm::SharedDevice {
        EmConfig::new(128, 8).ram_disk()
    }

    #[test]
    fn selects_every_rank_on_small_input() {
        let d = device();
        let data: Vec<u64> = vec![5, 3, 9, 1, 7, 3, 8, 0, 3, 2];
        let input = ExtVec::from_slice(d, &data).unwrap();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let cfg = SortConfig::new(64);
        for k in 0..data.len() as u64 {
            assert_eq!(
                select(&input, k, &cfg).unwrap(),
                sorted[k as usize],
                "k={k}"
            );
        }
    }

    #[test]
    fn selects_on_large_random_input() {
        let d = device();
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<u64> = (0..20_000).map(|_| rng.gen_range(0..1_000_000)).collect();
        let input = ExtVec::from_slice(d, &data).unwrap();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let cfg = SortConfig::new(128);
        for k in [0u64, 1, 9_999, 19_998, 19_999] {
            assert_eq!(
                select(&input, k, &cfg).unwrap(),
                sorted[k as usize],
                "k={k}"
            );
        }
    }

    #[test]
    fn duplicate_heavy_input() {
        let d = device();
        let data: Vec<u64> = (0..10_000).map(|i| i % 3).collect();
        let input = ExtVec::from_slice(d, &data).unwrap();
        let cfg = SortConfig::new(64);
        assert_eq!(select(&input, 0, &cfg).unwrap(), 0);
        assert_eq!(select(&input, 5_000, &cfg).unwrap(), 1);
        assert_eq!(select(&input, 9_999, &cfg).unwrap(), 2);
    }

    #[test]
    fn median_of_shuffled_range() {
        let d = device();
        let mut rng = StdRng::seed_from_u64(10);
        let mut data: Vec<u64> = (0..5001).collect();
        data.shuffle(&mut rng);
        let input = ExtVec::from_slice(d, &data).unwrap();
        assert_eq!(median(&input, &SortConfig::new(64)).unwrap(), 2500);
    }

    #[test]
    fn custom_comparator() {
        let d = device();
        let data: Vec<u64> = (0..1000).collect();
        let input = ExtVec::from_slice(d, &data).unwrap();
        // Descending order: rank 0 is the maximum.
        assert_eq!(
            select_by(&input, 0, &SortConfig::new(64), |a, b| a > b).unwrap(),
            999
        );
    }

    #[test]
    fn io_is_linear_not_sort() {
        let d = EmConfig::new(4096, 16).ram_disk();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000u64;
        let data: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        let input = ExtVec::from_slice(d.clone(), &data).unwrap();
        let cfg = SortConfig::new(8192);
        let before = d.stats().snapshot();
        select(&input, n / 2, &cfg).unwrap();
        let ios = d.stats().snapshot().since(&before).total();
        // For the median, a random pivot leaves 3/4·N expected, so the
        // read+write series sums to ≈ 8 scans; allow 2× slack for pivot
        // luck.  Still far below sorting (which costs ~4 scans *per pass*
        // plus the log factor — and more to the point, grows as N log N).
        let scan = bounds::scan(n, 512);
        assert!(
            (ios as f64) < 16.0 * scan,
            "selection used {ios} I/Os, scan = {scan}"
        );
    }

    #[test]
    fn temporaries_freed() {
        let d = device();
        let mut rng = StdRng::seed_from_u64(12);
        let data: Vec<u64> = (0..5000).map(|_| rng.gen()).collect();
        let input = ExtVec::from_slice(d.clone(), &data).unwrap();
        let before = d.allocated_blocks();
        select(&input, 2500, &SortConfig::new(64)).unwrap();
        assert_eq!(d.allocated_blocks(), before);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rank_panics() {
        let d = device();
        let input = ExtVec::from_slice(d, &[1u64, 2, 3]).unwrap();
        let _ = select(&input, 3, &SortConfig::new(64));
    }
}
