//! # `emsort` — external sorting, permuting, and matrix transposition
//!
//! The algorithms behind the survey's central result, the sorting bound
//!
//! ```text
//! Sort(N) = Θ((N/B) · log_{M/B}(N/B))
//! ```
//!
//! and its relatives:
//!
//! * [`merge_sort`] / [`merge_sort_by`] — run formation followed by
//!   `Θ(M/B)`-way merging; run formation is either *load–sort–store* (runs of
//!   exactly `M` records) or *replacement selection* (runs averaging `2M` on
//!   random input) — an ablation the experiments measure.
//! * [`distribution_sort`] / [`distribution_sort_by`] — the dual approach:
//!   sample pivots, partition into `Θ(M/B)` buckets, recurse.
//! * [`permute_naive`] / [`permute_by_sort`] — both sides of the permutation
//!   bound `Permute(N) = Θ(min(N, Sort(N)))`.
//! * [`bmmc_permute`] — the survey's structured-permutation class (bit
//!   reversal, perfect shuffles, …) with on-the-fly target computation.
//! * [`transpose_naive`] / [`transpose_blocked`] — matrix transposition; the
//!   blocked algorithm achieves `O(N/B)` I/Os whenever `M ≥ 4B²` (the
//!   "tall-memory" regime) and falls back to sort-based transposition
//!   (`O(Sort(N))`) below it.
//!
//! Every entry point takes a [`SortConfig`] carrying the memory budget `M`
//! (in records); buffers are charged against an [`em_core::MemBudget`] so
//! exceeding the declared memory is a panic, not a silent cheat.
//!
//! Multi-disk behaviour needs no extra code: running any of these on a
//! striped [`pdm::DiskArray`](em_core::pdm::DiskArray) models disk striping
//! (block size `D·B`, fan-in `M/(DB)`), while running them on an independent
//! array spreads each run's blocks round-robin so the parallel I/O time
//! approaches `total/D` — the comparison of experiment F5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bmmc;
mod distribution;
mod forecast;
mod guidesort;
mod heap;
mod losertree;
mod merge;
mod permute;
mod runs;
mod select;
mod transpose;

pub use bmmc::{bit_reversal, bmmc_permute, perfect_shuffle, BmmcMatrix};
pub use distribution::{distribution_sort, distribution_sort_by};
pub use merge::{
    merge_runs_by, merge_runs_streaming, merge_runs_with, merge_sort, merge_sort_by,
    merge_sort_streaming, merge_sort_with_metrics, sort_into, SortMetrics, SortedStream,
    SortingWriter,
};
pub use permute::{invert_permutation, permute_by_sort, permute_naive};
pub use runs::{form_runs, RunFormation};
pub use select::{median, select, select_by};
pub use transpose::{transpose_blocked, transpose_naive};

/// Read-ahead / write-behind depths for the sort's streaming I/O.
///
/// With nonzero depths, run formation and merging keep that many extra
/// blocks in flight per stream (issued via asynchronous device tickets), so
/// on an overlapped [`pdm::DiskArray`](em_core::pdm::DiskArray) the disks
/// work while the CPU merges.  The overlap buffers are charged against the
/// sort's [`em_core::MemBudget`] *in addition to* the `M` records of
/// [`SortConfig::mem_records`] — they are pipeline slack, not working
/// memory — and degrade to zero if even that slack is unavailable.  Overlap
/// never changes which block transfers happen, so I/O counts are identical
/// with it on or off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverlapConfig {
    /// Blocks of read-ahead per input stream (0 = demand reads).
    pub read_ahead: usize,
    /// Blocks of write-behind per output stream (0 = synchronous flush).
    pub write_behind: usize,
}

impl OverlapConfig {
    /// No overlap: every transfer is synchronous (the default).
    pub fn off() -> Self {
        OverlapConfig::default()
    }

    /// The same depth for read-ahead and write-behind.
    pub fn symmetric(depth: usize) -> Self {
        OverlapConfig {
            read_ahead: depth,
            write_behind: depth,
        }
    }

    /// True if any overlap is requested.
    pub fn enabled(&self) -> bool {
        self.read_ahead > 0 || self.write_behind > 0
    }

    /// Interpret the configured depths as **per-disk** and return the
    /// per-array depths for a device whose sequential block stream spreads
    /// over `lanes` independent disks
    /// ([`BlockDevice::stream_lanes`](pdm::BlockDevice::stream_lanes)).
    ///
    /// A sequential stream on an independent-placement array lands
    /// consecutive blocks on consecutive disks, so keeping `read_ahead`
    /// transfers outstanding *per disk* requires `read_ahead · D` outstanding
    /// per array — otherwise D−depth lanes idle and the striping penalty
    /// reappears as serialization.  On a single disk or a striped array
    /// (`lanes == 1`, every logical transfer occupies all D disks) this is
    /// the identity.  Depth is pure scheduling either way: it never changes
    /// which transfers happen.
    pub fn for_lanes(self, lanes: usize) -> OverlapConfig {
        let l = lanes.max(1);
        OverlapConfig {
            read_ahead: self.read_ahead * l,
            write_behind: self.write_behind * l,
        }
    }
}

/// The process-wide default overlap, read once from the `EMSORT_OVERLAP`
/// environment variable: unset or unparsable means no overlap, `N` means
/// [`OverlapConfig::symmetric`]`(N)`.  Lets CI run the whole test suite with
/// the overlapped pipeline forced on without touching call sites.
fn env_overlap() -> OverlapConfig {
    use std::sync::OnceLock;
    static CACHE: OnceLock<OverlapConfig> = OnceLock::new();
    *CACHE.get_or_init(|| {
        match std::env::var("EMSORT_OVERLAP")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(d) => OverlapConfig::symmetric(d),
            None => OverlapConfig::off(),
        }
    })
}

/// Which kernel drives the k-way merge.
///
/// Every kernel produces *identical* output (ties always resolve toward the
/// lower run index) and performs identical I/O.  The comparison kernels
/// differ in comparisons per record: the binary heap pays up to `2·log₂ k`,
/// the loser tree exactly `⌈log₂ k⌉` — less on duplicate-heavy data thanks
/// to its block-drain fast path.  [`Guided`](MergeKernel::Guided)
/// additionally swaps the merge's prefetch *scheduler*: instead of
/// forecasting (re-deriving the most urgent block dynamically each pump) it
/// walks a guide sequence computed once from the runs' block heads, à la
/// Hagerup's Guidesort — see the `guidesort` module documentation.  The
/// enum exists so experiments can A/B them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeKernel {
    /// Loser tree for `k ≥ 3`, binary heap below (where a tree has no edge).
    #[default]
    Auto,
    /// Always the binary heap (one `replace_min` sift per record).
    Heap,
    /// Always the loser tree.
    LoserTree,
    /// The [`Auto`](MergeKernel::Auto) comparison kernel, with block
    /// prefetches planned by a static guide sequence instead of dynamic
    /// forecasting.  Takes effect when read-ahead is on and the runs carry
    /// block-head metadata (the same preconditions as forecasting);
    /// otherwise identical to `Auto`.  Overrides [`SortConfig::forecast`].
    Guided,
}

/// Parameters of one external sort.
#[derive(Debug, Clone, Copy)]
pub struct SortConfig {
    /// Internal memory budget `M`, in records of the type being sorted.
    pub mem_records: usize,
    /// Merge fan-in / distribution bucket-count override.  `None` uses the
    /// maximum the memory budget allows (`M/B − 1`).
    pub fan_in: Option<usize>,
    /// How initial runs are formed.
    pub run_formation: RunFormation,
    /// Read-ahead / write-behind depths (defaults to `EMSORT_OVERLAP`, which
    /// itself defaults to off).
    pub overlap: OverlapConfig,
    /// Comparison kernel for the merge phase.
    pub kernel: MergeKernel,
    /// Worker threads for the in-memory sort of run formation; `0` = the
    /// machine's available parallelism (capped at 8), `1` = sequential.
    /// Never changes run contents or I/O counts — wall-clock only.
    pub run_threads: usize,
    /// Schedule merge read-ahead by block leading keys (Vitter's
    /// forecasting) instead of uniform per-run depth.  Only takes effect
    /// when `overlap.read_ahead > 0`; transfer counts are identical either
    /// way.
    pub forecast: bool,
    /// Fuse the final merge pass into the consumer in
    /// [`merge_sort_streaming`](crate::merge_sort_streaming) /
    /// [`sort_into`](crate::sort_into) (the default).  When disabled those
    /// entry points materialize the sorted output and stream it back as a
    /// plain scan — the pre-fusion "sort, write, re-read" cost, kept as an
    /// A/B baseline for benchmarks.  Record sequences are identical either
    /// way; only the transfer counts differ.
    pub fusion: bool,
}

impl SortConfig {
    /// A configuration with the given memory budget, maximum fan-in,
    /// load–sort–store run formation, and the environment-default overlap.
    pub fn new(mem_records: usize) -> Self {
        SortConfig {
            mem_records,
            fan_in: None,
            run_formation: RunFormation::LoadSort,
            overlap: env_overlap(),
            kernel: MergeKernel::Auto,
            run_threads: 0,
            forecast: true,
            fusion: true,
        }
    }

    /// Builder: override the merge fan-in.
    pub fn with_fan_in(mut self, fan_in: usize) -> Self {
        self.fan_in = Some(fan_in);
        self
    }

    /// Builder: select the run-formation strategy.
    pub fn with_run_formation(mut self, rf: RunFormation) -> Self {
        self.run_formation = rf;
        self
    }

    /// Builder: set the read-ahead / write-behind depths.
    pub fn with_overlap(mut self, overlap: OverlapConfig) -> Self {
        self.overlap = overlap;
        self
    }

    /// Builder: select the merge comparison kernel.
    pub fn with_merge_kernel(mut self, kernel: MergeKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Builder: set the run-formation worker-thread count (`0` = auto).
    pub fn with_run_threads(mut self, threads: usize) -> Self {
        self.run_threads = threads;
        self
    }

    /// Builder: enable or disable forecasting-driven merge prefetch.
    pub fn with_forecast(mut self, forecast: bool) -> Self {
        self.forecast = forecast;
        self
    }

    /// Builder: enable or disable pipeline fusion in the streaming sort
    /// entry points (see [`SortConfig::fusion`]).
    pub fn with_fusion(mut self, fusion: bool) -> Self {
        self.fusion = fusion;
        self
    }

    /// Worker threads run formation actually uses: the explicit value, or —
    /// when `run_threads` is 0 — the machine's available parallelism capped
    /// at 8.
    pub fn effective_run_threads(&self) -> usize {
        if self.run_threads != 0 {
            self.run_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        }
    }

    /// The fan-in actually used for a record type with `per_block` records
    /// per block: the override if given, else `M/B − 1` (one block per input
    /// run plus one output block), clamped to at least 2.
    pub fn effective_fan_in(&self, per_block: usize) -> usize {
        let max = (self.mem_records / per_block).saturating_sub(1).max(2);
        match self.fan_in {
            Some(k) => {
                assert!(k >= 2, "fan-in must be at least 2");
                k.min(max)
            }
            None => max,
        }
    }
}
