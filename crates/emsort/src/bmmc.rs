//! BMMC (bit-matrix-multiply/complement) permutations.
//!
//! The survey's treatment of structured permutations — FFT dataflow, bit
//! reversal, matrix (un)shuffles, Gray codes — is unified by the BMMC
//! class: the target address is an affine map of the source address over
//! GF(2),
//!
//! ```text
//! target = A · source ⊕ c      (A a nonsingular log N × log N bit matrix)
//! ```
//!
//! The optimal algorithm performs `Θ((N/B)·(1 + rank(A_{low})/log m))` I/Os;
//! this implementation routes BMMC permutations through the generic sorting
//! bound (`O(Sort(N))`) — within the survey's `log` factor of optimal, and
//! the honest baseline for the class (documented in DESIGN.md).  What it
//! buys over [`permute_by_sort`](crate::permute_by_sort) is that the target
//! addresses are *computed on the fly from the bit matrix* instead of being
//! materialized as an `N`-record destination vector: one less scan and no
//! `8N` bytes of destination storage.
//!
//! [`bit_reversal`] builds the `A` for the FFT's bit-reversal step;
//! [`perfect_shuffle`] the cyclic address rotation.

use em_core::{ExtVec, ExtVecWriter, Record};
use pdm::Result;

use crate::{merge_sort_by, SortConfig};

/// An affine address map over GF(2): `target = A·source ⊕ c`, for addresses
/// of `bits` bits.  Row `i` of `A` is stored as a u64 mask of source bits.
#[derive(Debug, Clone)]
pub struct BmmcMatrix {
    /// `rows[i]` = mask of source-address bits XORed into target bit `i`.
    rows: Vec<u64>,
    /// Complement vector `c`.
    complement: u64,
}

impl BmmcMatrix {
    /// Build from rows (row `i` = mask of source bits feeding target bit
    /// `i`) and a complement vector.
    ///
    /// # Panics
    /// If the matrix is singular over GF(2) (the map would not be a
    /// permutation).
    pub fn new(rows: Vec<u64>, complement: u64) -> Self {
        assert!(rows.len() <= 64, "at most 64 address bits");
        assert!(
            Self::is_nonsingular(&rows),
            "BMMC matrix must be nonsingular over GF(2)"
        );
        BmmcMatrix { rows, complement }
    }

    /// The identity map on `bits`-bit addresses.
    pub fn identity(bits: u32) -> Self {
        Self::new((0..bits).map(|i| 1u64 << i).collect(), 0)
    }

    /// Number of address bits.
    pub fn bits(&self) -> u32 {
        self.rows.len() as u32
    }

    /// Apply the map to one address.
    pub fn apply(&self, source: u64) -> u64 {
        let mut out = 0u64;
        for (i, &mask) in self.rows.iter().enumerate() {
            out |= u64::from((source & mask).count_ones() & 1) << i;
        }
        out ^ self.complement
    }

    fn is_nonsingular(rows: &[u64]) -> bool {
        // Gaussian elimination over GF(2).
        let mut m: Vec<u64> = rows.to_vec();
        let n = m.len();
        let mut rank = 0;
        for bit in 0..n {
            let pivot = (rank..n).find(|&r| m[r] >> bit & 1 == 1);
            let Some(p) = pivot else { continue };
            m.swap(rank, p);
            for r in 0..n {
                if r != rank && m[r] >> bit & 1 == 1 {
                    m[r] ^= m[rank];
                }
            }
            rank += 1;
        }
        rank == n
    }
}

/// The bit-reversal map on `bits`-bit addresses — the FFT's data
/// rearrangement step.
pub fn bit_reversal(bits: u32) -> BmmcMatrix {
    BmmcMatrix::new((0..bits).map(|i| 1u64 << (bits - 1 - i)).collect(), 0)
}

/// The perfect-shuffle map (cyclic left rotation of the address bits).
pub fn perfect_shuffle(bits: u32) -> BmmcMatrix {
    // target bit (i+1) mod bits = source bit i.
    let rows = (0..bits).map(|i| 1u64 << ((i + bits - 1) % bits)).collect();
    BmmcMatrix::new(rows, 0)
}

/// Apply a BMMC permutation to an array of exactly `2^bits` records:
/// `out[A·i ⊕ c] = input[i]`.  `O(Sort(N))` I/Os.
pub fn bmmc_permute<R: Record>(
    input: &ExtVec<R>,
    matrix: &BmmcMatrix,
    cfg: &SortConfig,
) -> Result<ExtVec<R>> {
    let n = input.len();
    assert_eq!(n, 1u64 << matrix.bits(), "input length must be 2^bits");
    let device = input.device().clone();
    // Tag with computed targets (no materialized destination vector).
    let mut w: ExtVecWriter<(u64, R)> = ExtVecWriter::new(device.clone());
    {
        let mut r = input.reader();
        let mut i = 0u64;
        while let Some(rec) = r.try_next()? {
            w.push((matrix.apply(i), rec))?;
            i += 1;
        }
    }
    let tagged = w.finish()?;
    let pair_cfg = SortConfig {
        mem_records: (cfg.mem_records * R::BYTES / (u64::BYTES + R::BYTES)).max(1),
        ..*cfg
    };
    let sorted = merge_sort_by(&tagged, &pair_cfg, |a, b| a.0 < b.0)?;
    tagged.free()?;
    let mut out: ExtVecWriter<R> = ExtVecWriter::new(device);
    let mut r = sorted.reader();
    while let Some((_, rec)) = r.try_next()? {
        out.push(rec)?;
    }
    drop(r);
    sorted.free()?;
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::EmConfig;

    fn device() -> pdm::SharedDevice {
        EmConfig::new(128, 8).ram_disk()
    }

    #[test]
    fn identity_is_identity() {
        let d = device();
        let data: Vec<u64> = (0..256).collect();
        let v = ExtVec::from_slice(d, &data).unwrap();
        let out = bmmc_permute(&v, &BmmcMatrix::identity(8), &SortConfig::new(64)).unwrap();
        assert_eq!(out.to_vec().unwrap(), data);
    }

    #[test]
    fn bit_reversal_matches_reference() {
        let bits = 10;
        let n = 1u64 << bits;
        let d = device();
        let data: Vec<u64> = (0..n).map(|i| i * 3).collect();
        let v = ExtVec::from_slice(d, &data).unwrap();
        let out = bmmc_permute(&v, &bit_reversal(bits), &SortConfig::new(128))
            .unwrap()
            .to_vec()
            .unwrap();
        for i in 0..n {
            let rev = i.reverse_bits() >> (64 - bits);
            assert_eq!(out[rev as usize], data[i as usize], "i={i}");
        }
    }

    #[test]
    fn bit_reversal_is_an_involution() {
        let bits = 9;
        let d = device();
        let data: Vec<u64> = (0..1u64 << bits).map(|i| i.wrapping_mul(0x9E37)).collect();
        let v = ExtVec::from_slice(d, &data).unwrap();
        let cfg = SortConfig::new(128);
        let once = bmmc_permute(&v, &bit_reversal(bits), &cfg).unwrap();
        let twice = bmmc_permute(&once, &bit_reversal(bits), &cfg).unwrap();
        assert_eq!(twice.to_vec().unwrap(), data);
    }

    #[test]
    fn perfect_shuffle_interleaves_halves() {
        // Shuffling 0..2^b moves element i (in the first half) to 2i —
        // the riffle of a card deck.
        let bits = 6;
        let n = 1u64 << bits;
        let d = device();
        let data: Vec<u64> = (0..n).collect();
        let v = ExtVec::from_slice(d, &data).unwrap();
        let out = bmmc_permute(&v, &perfect_shuffle(bits), &SortConfig::new(64))
            .unwrap()
            .to_vec()
            .unwrap();
        for i in 0..n / 2 {
            assert_eq!(out[(2 * i) as usize], i, "first-half card {i}");
            assert_eq!(out[(2 * i + 1) as usize], n / 2 + i, "second-half card {i}");
        }
    }

    #[test]
    fn complement_vector_xors_addresses() {
        let bits = 5;
        let n = 1u64 << bits;
        let d = device();
        let data: Vec<u64> = (0..n).collect();
        let v = ExtVec::from_slice(d, &data).unwrap();
        let m = BmmcMatrix::new((0..bits).map(|i| 1u64 << i).collect(), 0b10101);
        let out = bmmc_permute(&v, &m, &SortConfig::new(64))
            .unwrap()
            .to_vec()
            .unwrap();
        for i in 0..n {
            assert_eq!(out[(i ^ 0b10101) as usize], i);
        }
    }

    #[test]
    #[should_panic(expected = "nonsingular")]
    fn singular_matrix_rejected() {
        // Two identical rows → singular.
        let _ = BmmcMatrix::new(vec![0b01, 0b01], 0);
    }

    #[test]
    #[should_panic(expected = "2^bits")]
    fn wrong_length_rejected() {
        let d = device();
        let v = ExtVec::from_slice(d, &[1u64, 2, 3]).unwrap();
        let _ = bmmc_permute(&v, &BmmcMatrix::identity(2), &SortConfig::new(64));
    }
}
