//! Distribution (sample) sort.
//!
//! The dual of merge sort: instead of combining sorted runs, split the input
//! around `Θ(M/B)` sampled pivots into buckets, recurse on each bucket, and
//! concatenate.  Each level of recursion scans the data a constant number of
//! times (sample + partition), and the bucket count per level is `Θ(M/B)`,
//! so the total cost is `Θ((N/B) · log_{M/B}(N/B))` — the same sorting bound
//! as merge sort, reached from the other side (experiment F2 compares the
//! constants).
//!
//! Pivot handling follows the classic three-way discipline: records
//! equivalent to a pivot form their own *equal zone* which is emitted
//! verbatim.  Since every pivot is drawn from the bucket, each equal zone is
//! non-empty and every recursive zone is strictly smaller than its parent —
//! progress is guaranteed even on duplicate-heavy inputs.

use std::sync::Arc;

use em_core::{ExtVec, ExtVecWriter, MemBudget, Record};
use pdm::Result;
use rand::prelude::*;

use crate::runs::cmp_from_less;
use crate::SortConfig;

/// Sort `input` by natural ordering using distribution sort.
pub fn distribution_sort<R: Record + Ord>(
    input: &ExtVec<R>,
    cfg: &SortConfig,
) -> Result<ExtVec<R>> {
    distribution_sort_by(input, cfg, |a, b| a < b)
}

/// Sort `input` by a strict-less predicate using distribution sort.
///
/// The input is left untouched; the result is a new array on the same
/// device.  Pivot sampling is deterministic (fixed seed) so experiment runs
/// are reproducible.  Intermediate buckets are freed as soon as they have
/// been partitioned, so peak disk usage stays `O(N/B)` blocks beyond the
/// input.
///
/// The [`OverlapConfig`](crate::OverlapConfig) on `cfg` applies here exactly
/// as it does to merge sort: the partition reader prefetches ahead and the
/// zone writers retire blocks behind, charged as budget *headroom* beyond
/// `M` so pivot counts, recursion structure, and transfer counts are
/// byte-identical to the synchronous pipeline.  On an independent-placement
/// [`DiskArray`](pdm::DiskArray), bucket blocks round-robin across lanes as
/// they are allocated, so zone writes stay D-parallel.
pub fn distribution_sort_by<R, F>(input: &ExtVec<R>, cfg: &SortConfig, less: F) -> Result<ExtVec<R>>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    let b = input.per_block();
    // Overlap depths are per disk: streams on an independent-placement
    // array deepen their queues by the lane count (see
    // [`OverlapConfig::for_lanes`](crate::OverlapConfig::for_lanes)) so the
    // partition reader and zone writers keep every member disk busy.
    let ov = cfg.overlap.for_lanes(input.device().stream_lanes());
    let cfg = &cfg.with_overlap(ov);
    // Overlap headroom beyond M: read-ahead for the one partition reader
    // plus write-behind for every zone writer a level can hold (2P+1 zones
    // and the output stream).  Partition math below is computed from
    // `mem_records` alone, never from the inflated budget capacity, so the
    // bucket tree — and with it every transfer — is identical with overlap
    // on or off.
    let p_bound = cfg
        .fan_in
        .map(|k| k.saturating_sub(1) / 2)
        .unwrap_or((cfg.mem_records / b).saturating_sub(2) / 2)
        .max(1);
    let reserve = (ov.read_ahead + (2 * p_bound + 2) * ov.write_behind) * b;
    let ctx = Ctx {
        budget: MemBudget::new(cfg.mem_records + reserve),
        cfg: *cfg,
        rng: std::cell::RefCell::new(StdRng::seed_from_u64(0xD157_0507)),
        levels: std::cell::Cell::new(0),
    };
    let mut out =
        ExtVecWriter::with_write_behind(input.device().clone(), ov.write_behind, &ctx.budget);
    if input.len() as usize <= cfg.mem_records {
        emit_sorted_in_memory(input, &mut out, &ctx, less)?;
    } else {
        let (open, equal) = partition(input, &ctx, less)?;
        recurse_zones(open, equal, &mut out, &ctx, less, 1)?;
    }
    out.finish()
}

struct Ctx {
    budget: Arc<MemBudget>,
    cfg: SortConfig,
    rng: std::cell::RefCell<StdRng>,
    /// Partition calls so far — the stream token announced to the device's
    /// lane policy before each level's zone writers allocate (see
    /// [`BlockDevice::direct_next_stream`](pdm::BlockDevice::direct_next_stream)).
    levels: std::cell::Cell<usize>,
}

/// Base case: the bucket fits in memory — load, sort, append to `out`.
fn emit_sorted_in_memory<R, F>(
    bucket: &ExtVec<R>,
    out: &mut ExtVecWriter<R>,
    ctx: &Ctx,
    less: F,
) -> Result<()>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    let _charge = ctx.budget.charge(bucket.len() as usize);
    let mut records = bucket.to_vec()?;
    records.sort_by(|x, y| cmp_from_less(less, x, y));
    for r in records {
        out.push(r)?;
    }
    Ok(())
}

/// Open zones and equal zones produced by one partition level.
type Zones<R> = (Vec<ExtVec<R>>, Vec<ExtVec<R>>);

/// Split `bucket` around sampled pivots into `P+1` open zones and `P` equal
/// zones.  Costs two scans of the bucket plus one write of every record.
fn partition<R, F>(bucket: &ExtVec<R>, ctx: &Ctx, less: F) -> Result<Zones<R>>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    // All sizing decisions come from the configured M, not the budget's
    // capacity (which includes overlap headroom): P and the sample size
    // determine the bucket tree, and that tree must not depend on whether
    // I/O overlap is enabled.
    let m = ctx.cfg.mem_records;
    let b = bucket.per_block();
    let m_blocks = m / b;
    assert!(
        m_blocks >= 6,
        "distribution sort needs at least 6 blocks of memory"
    );
    // 2P+1 zone writers + 1 reader block must fit in M.
    let p = ctx
        .cfg
        .fan_in
        .map(|k| k.saturating_sub(1) / 2)
        .unwrap_or((m_blocks - 2) / 2)
        .max(1);

    // Pass 1: reservoir-sample pivot candidates.
    let ov = ctx.cfg.overlap;
    let sample_target = (p * 4).min(m / 2).max(p.min(m / 2)).max(1);
    let mut sample: Vec<R> = Vec::with_capacity(sample_target);
    {
        let _charge = ctx.budget.charge(sample_target + b);
        let mut rng = ctx.rng.borrow_mut();
        let mut seen = 0u64;
        let mut reader = bucket.reader_at_prefetch(0, ov.read_ahead, &ctx.budget);
        while let Some(r) = reader.try_next()? {
            seen += 1;
            if sample.len() < sample_target {
                sample.push(r);
            } else {
                let j = rng.gen_range(0..seen);
                if (j as usize) < sample_target {
                    sample[j as usize] = r;
                }
            }
        }
    }
    sample.sort_by(|x, y| cmp_from_less(less, x, y));
    // P evenly spaced pivots, equivalents dropped.
    let mut pivots: Vec<R> = Vec::with_capacity(p);
    for i in 1..=p {
        let idx = (i * sample.len()) / (p + 1);
        let cand = sample[idx.min(sample.len() - 1)].clone();
        if pivots.last().is_none_or(|last| less(last, &cand)) {
            pivots.push(cand);
        }
    }
    let np = pivots.len();

    // Pass 2: distribute.  On independent-geometry arrays the level's zone
    // writers interleave their allocations through the device's one lane
    // cursor, so the bucket writes of one level keep all D lanes busy.
    // Announcing the level as a stream lets the seeded lane policies (SRM /
    // randomized cycling) decorrelate where each level's allocation
    // sequence starts and in what order it cycles — the recursion is
    // deterministic, so the token sequence (and hence the block layout) is
    // reproducible run to run.
    let level = ctx.levels.get();
    ctx.levels.set(level + 1);
    bucket.device().direct_next_stream(level);
    let mut open: Vec<ExtVecWriter<R>> = (0..=np)
        .map(|_| {
            ExtVecWriter::with_write_behind(bucket.device().clone(), ov.write_behind, &ctx.budget)
        })
        .collect();
    let mut equal: Vec<ExtVecWriter<R>> = (0..np)
        .map(|_| {
            ExtVecWriter::with_write_behind(bucket.device().clone(), ov.write_behind, &ctx.budget)
        })
        .collect();
    {
        let _charge = ctx.budget.charge((2 * np + 2) * b);
        let mut reader = bucket.reader_at_prefetch(0, ov.read_ahead, &ctx.budget);
        while let Some(r) = reader.try_next()? {
            let lo = pivots.partition_point(|pv| less(pv, &r));
            if lo < np && !less(&r, &pivots[lo]) {
                equal[lo].push(r)?;
            } else {
                open[lo].push(r)?;
            }
        }
    }
    let open = open
        .into_iter()
        .map(|w| w.finish())
        .collect::<Result<Vec<_>>>()?;
    let equal = equal
        .into_iter()
        .map(|w| w.finish())
        .collect::<Result<Vec<_>>>()?;
    Ok((open, equal))
}

/// Emit zones in sorted order: recurse on open zones, stream equal zones.
fn recurse_zones<R, F>(
    open: Vec<ExtVec<R>>,
    equal: Vec<ExtVec<R>>,
    out: &mut ExtVecWriter<R>,
    ctx: &Ctx,
    less: F,
    depth: u32,
) -> Result<()>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    assert!(depth < 64, "distribution sort failed to make progress");
    let mut equal_iter = equal.into_iter();
    for zone in open {
        sort_owned(zone, out, ctx, less, depth)?;
        if let Some(eq) = equal_iter.next() {
            // Records equivalent to the pivot need no further sorting.
            let _charge = ctx.budget.charge(2 * eq.per_block());
            let mut reader = eq.reader_at_prefetch(0, ctx.cfg.overlap.read_ahead, &ctx.budget);
            while let Some(r) = reader.try_next()? {
                out.push(r)?;
            }
            drop(reader);
            eq.free()?;
        }
    }
    Ok(())
}

/// Sort an owned bucket into `out`, freeing its blocks as soon as its
/// records have been copied onward.
fn sort_owned<R, F>(
    bucket: ExtVec<R>,
    out: &mut ExtVecWriter<R>,
    ctx: &Ctx,
    less: F,
    depth: u32,
) -> Result<()>
where
    R: Record,
    F: Fn(&R, &R) -> bool + Copy,
{
    // In-memory threshold uses the configured M, not the overlap-inflated
    // budget capacity, so the recursion bottoms out identically either way.
    if bucket.len() as usize <= ctx.cfg.mem_records {
        emit_sorted_in_memory(&bucket, out, ctx, less)?;
        return bucket.free();
    }
    let (open, equal) = partition(&bucket, ctx, less)?;
    bucket.free()?;
    recurse_zones(open, equal, out, ctx, less, depth + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::{bounds, EmConfig};

    fn device_b8() -> pdm::SharedDevice {
        EmConfig::new(64, 8).ram_disk()
    }

    fn check_sort(data: Vec<u64>, m: usize) {
        let device = device_b8();
        let input = ExtVec::from_slice(device, &data).unwrap();
        let out = distribution_sort(&input, &SortConfig::new(m)).unwrap();
        let mut expect = data;
        expect.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), expect);
    }

    #[test]
    fn sorts_random_input() {
        let mut rng = StdRng::seed_from_u64(11);
        check_sort((0..5000).map(|_| rng.gen()).collect(), 64);
    }

    #[test]
    fn sorts_sorted_and_reversed() {
        check_sort((0..2000).collect(), 64);
        check_sort((0..2000).rev().collect(), 64);
    }

    #[test]
    fn duplicate_heavy_terminates() {
        let mut rng = StdRng::seed_from_u64(12);
        check_sort((0..4000).map(|_| rng.gen_range(0..3)).collect(), 64);
    }

    #[test]
    fn all_equal_input() {
        check_sort(vec![7u64; 3000], 48);
    }

    #[test]
    fn small_inputs() {
        for n in [0u64, 1, 5, 64] {
            check_sort((0..n).rev().collect(), 64);
        }
    }

    #[test]
    fn custom_comparator() {
        let device = device_b8();
        let mut rng = StdRng::seed_from_u64(13);
        let data: Vec<u64> = (0..2000).map(|_| rng.gen()).collect();
        let input = ExtVec::from_slice(device, &data).unwrap();
        let out = distribution_sort_by(&input, &SortConfig::new(64), |a, b| a > b).unwrap();
        let mut expect = data;
        expect.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(out.to_vec().unwrap(), expect);
    }

    #[test]
    fn io_within_constant_of_sort_bound() {
        let device = device_b8();
        let mut rng = StdRng::seed_from_u64(14);
        let n = 20_000u64;
        let m = 128usize;
        let b = 8usize;
        let data: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        let input = ExtVec::from_slice(device.clone(), &data).unwrap();
        let before = device.stats().snapshot();
        let out = distribution_sort(&input, &SortConfig::new(m)).unwrap();
        let d = device.stats().snapshot().since(&before);
        assert_eq!(out.len(), n);
        let bound = bounds::sort(n, m, b);
        let ratio = d.total() as f64 / bound;
        assert!(
            ratio < 8.0,
            "distribution sort used {}, bound {bound}, ratio {ratio}",
            d.total()
        );
    }

    #[test]
    fn temporaries_are_freed() {
        let device = device_b8();
        let mut rng = StdRng::seed_from_u64(15);
        let data: Vec<u64> = (0..5000).map(|_| rng.gen()).collect();
        let input = ExtVec::from_slice(device.clone(), &data).unwrap();
        let before = device.allocated_blocks();
        let out = distribution_sort(&input, &SortConfig::new(64)).unwrap();
        assert_eq!(device.allocated_blocks() - before, out.num_blocks() as u64);
    }

    /// Overlap is pure scheduling for distribution sort too: with read-ahead
    /// and write-behind enabled the output AND the exact transfer counts
    /// must match the synchronous run (the bucket tree may not shift).
    #[test]
    fn overlap_preserves_output_and_transfer_counts() {
        use crate::OverlapConfig;

        let mut rng = StdRng::seed_from_u64(17);
        let data: Vec<u64> = (0..6000).map(|_| rng.gen()).collect();

        let run = |ov: OverlapConfig| {
            let device = device_b8();
            let input = ExtVec::from_slice(device.clone(), &data).unwrap();
            let before = device.stats().snapshot();
            let out =
                distribution_sort_by(&input, &SortConfig::new(64).with_overlap(ov), |a, b| a < b)
                    .unwrap();
            let delta = device.stats().snapshot().since(&before);
            (out.to_vec().unwrap(), delta.reads(), delta.writes())
        };

        let (sync_out, sync_r, sync_w) = run(OverlapConfig::off());
        let (ov_out, ov_r, ov_w) = run(OverlapConfig::symmetric(2));
        assert_eq!(sync_out, ov_out, "overlap changed distribution output");
        assert_eq!(sync_r, ov_r, "overlap changed distribution read count");
        assert_eq!(sync_w, ov_w, "overlap changed distribution write count");
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(sync_out, expect);
    }

    #[test]
    fn fan_in_override_narrows_partitions() {
        // With fan_in 3 → P = 1 pivot per level; still sorts correctly.
        let device = device_b8();
        let mut rng = StdRng::seed_from_u64(16);
        let data: Vec<u64> = (0..3000).map(|_| rng.gen()).collect();
        let input = ExtVec::from_slice(device, &data).unwrap();
        let out = distribution_sort_by(&input, &SortConfig::new(64).with_fan_in(3), |a, b| a < b)
            .unwrap();
        let mut expect = data;
        expect.sort_unstable();
        assert_eq!(out.to_vec().unwrap(), expect);
    }
}
