//! External matrix transposition.
//!
//! Transposing a `p × q` row-major matrix is a structured permutation; the
//! survey's bound is `Θ((N/B) · log_m min(M, p, q, N/M))`.  Two regimes
//! matter in practice:
//!
//! * **Tall memory (`M ≥ 4B²`)** — the `log` term is constant and
//!   [`transpose_blocked`] achieves `O(N/B)` I/Os with square tiles of side
//!   `t = ⌊√(M/2)⌋ ≥ B`: each tile is read row-segment-wise, transposed in
//!   memory, and written column-segment-wise (edge blocks read-modify-write).
//! * **Small memory (`M < 4B²`)** — the blocked method degrades (each
//!   segment touches a whole block for `< B` useful records), so
//!   `transpose_blocked` falls back to sort-based transposition
//!   (`O(Sort(N))` I/Os), which is within the `log` factor of optimal.
//!
//! [`transpose_naive`] writes each record to its target position one at a
//! time (`Θ(N)` I/Os) — the baseline of experiment F4.

use em_core::{ExtVec, ExtVecWriter, Record};
use pdm::Result;

use crate::{merge_sort_by, SortConfig};

/// Transpose a `p × q` row-major matrix one record at a time: a sequential
/// scan plus `2N` random I/Os.
pub fn transpose_naive<R: Record>(input: &ExtVec<R>, p: u64, q: u64) -> Result<ExtVec<R>> {
    assert_eq!(input.len(), p * q, "matrix shape mismatch");
    let out = ExtVec::with_len(input.device().clone(), input.len())?;
    let mut reader = input.reader();
    let mut idx = 0u64;
    while let Some(rec) = reader.try_next()? {
        let (r, c) = (idx / q, idx % q);
        out.set(c * p + r, &rec)?;
        idx += 1;
    }
    Ok(out)
}

/// Transpose a `p × q` row-major matrix I/O-efficiently.
///
/// Uses square-tile transposition (`O(N/B)` I/Os) when `M ≥ 4B²` and both
/// dimensions exceed `B`; otherwise sorts `(target, record)` pairs
/// (`O(Sort(N))` I/Os).
pub fn transpose_blocked<R: Record>(
    input: &ExtVec<R>,
    p: u64,
    q: u64,
    cfg: &SortConfig,
) -> Result<ExtVec<R>> {
    assert_eq!(input.len(), p * q, "matrix shape mismatch");
    let b = input.per_block() as u64;
    let m = cfg.mem_records as u64;
    let tile = (((m / 2) as f64).sqrt() as u64).max(1);
    if tile >= b && p >= b && q >= b {
        transpose_tiled(input, p, q, tile, cfg)
    } else {
        transpose_by_sort(input, p, q, cfg)
    }
}

fn transpose_tiled<R: Record>(
    input: &ExtVec<R>,
    p: u64,
    q: u64,
    tile: u64,
    cfg: &SortConfig,
) -> Result<ExtVec<R>> {
    let budget = em_core::MemBudget::new(cfg.mem_records);
    let out = ExtVec::with_len(input.device().clone(), input.len())?;
    let mut seg: Vec<R> = Vec::new();
    let mut tile_buf: Vec<R> = Vec::new();
    for r0 in (0..p).step_by(tile as usize) {
        let rows = tile.min(p - r0);
        for c0 in (0..q).step_by(tile as usize) {
            let cols = tile.min(q - c0);
            let _charge = budget.charge((rows * cols) as usize + input.per_block());
            // Gather the tile, row segment by row segment.
            tile_buf.clear();
            tile_buf.reserve((rows * cols) as usize);
            for r in r0..r0 + rows {
                input.read_range(r * q + c0, cols as usize, &mut seg)?;
                tile_buf.append(&mut seg);
            }
            // Scatter transposed: output row `c` (a column of the input)
            // gets the tile's column c−c0.
            let mut out_seg: Vec<R> = Vec::with_capacity(rows as usize);
            for c in 0..cols {
                out_seg.clear();
                for r in 0..rows {
                    out_seg.push(tile_buf[(r * cols + c) as usize].clone());
                }
                out.write_range((c0 + c) * p + r0, &out_seg)?;
            }
        }
    }
    Ok(out)
}

fn transpose_by_sort<R: Record>(
    input: &ExtVec<R>,
    p: u64,
    q: u64,
    cfg: &SortConfig,
) -> Result<ExtVec<R>> {
    let device = input.device().clone();
    let mut w: ExtVecWriter<(u64, R)> = ExtVecWriter::new(device.clone());
    {
        let mut reader = input.reader();
        let mut idx = 0u64;
        while let Some(rec) = reader.try_next()? {
            let (r, c) = (idx / q, idx % q);
            w.push((c * p + r, rec))?;
            idx += 1;
        }
    }
    let tagged = w.finish()?;
    let pair_cfg = SortConfig {
        mem_records: (cfg.mem_records * R::BYTES / (u64::BYTES + R::BYTES)).max(1),
        ..*cfg
    };
    let sorted = merge_sort_by(&tagged, &pair_cfg, |a, b| a.0 < b.0)?;
    tagged.free()?;
    let mut out: ExtVecWriter<R> = ExtVecWriter::new(device);
    let mut reader = sorted.reader();
    while let Some((_, rec)) = reader.try_next()? {
        out.push(rec)?;
    }
    drop(reader);
    sorted.free()?;
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::EmConfig;

    fn reference_transpose(data: &[u64], p: u64, q: u64) -> Vec<u64> {
        let mut out = vec![0u64; data.len()];
        for r in 0..p {
            for c in 0..q {
                out[(c * p + r) as usize] = data[(r * q + c) as usize];
            }
        }
        out
    }

    fn matrix(p: u64, q: u64) -> Vec<u64> {
        (0..p * q).map(|i| i * 3 + 1).collect()
    }

    #[test]
    fn naive_matches_reference() {
        let device = EmConfig::new(64, 8).ram_disk();
        let (p, q) = (12, 20);
        let data = matrix(p, q);
        let input = ExtVec::from_slice(device, &data).unwrap();
        let out = transpose_naive(&input, p, q).unwrap();
        assert_eq!(out.to_vec().unwrap(), reference_transpose(&data, p, q));
    }

    #[test]
    fn tiled_matches_reference_square() {
        // B = 8, M = 512 → tile = 16 ≥ B: tiled path.
        let device = EmConfig::new(64, 64).ram_disk();
        let (p, q) = (64, 64);
        let data = matrix(p, q);
        let input = ExtVec::from_slice(device, &data).unwrap();
        let out = transpose_blocked(&input, p, q, &SortConfig::new(512)).unwrap();
        assert_eq!(out.to_vec().unwrap(), reference_transpose(&data, p, q));
    }

    #[test]
    fn tiled_matches_reference_rectangular_unaligned() {
        let device = EmConfig::new(64, 64).ram_disk();
        let (p, q) = (37, 53); // nothing aligns with tile or block
        let data = matrix(p, q);
        let input = ExtVec::from_slice(device, &data).unwrap();
        let out = transpose_blocked(&input, p, q, &SortConfig::new(512)).unwrap();
        assert_eq!(out.to_vec().unwrap(), reference_transpose(&data, p, q));
    }

    #[test]
    fn sort_fallback_matches_reference() {
        // M = 32 < 4B² = 256 → sort-based path.
        let device = EmConfig::new(64, 8).ram_disk();
        let (p, q) = (40, 24);
        let data = matrix(p, q);
        let input = ExtVec::from_slice(device, &data).unwrap();
        let out = transpose_blocked(&input, p, q, &SortConfig::new(32)).unwrap();
        assert_eq!(out.to_vec().unwrap(), reference_transpose(&data, p, q));
    }

    #[test]
    fn double_transpose_is_identity() {
        let device = EmConfig::new(64, 64).ram_disk();
        let (p, q) = (48, 32);
        let data = matrix(p, q);
        let input = ExtVec::from_slice(device, &data).unwrap();
        let cfg = SortConfig::new(512);
        let t = transpose_blocked(&input, p, q, &cfg).unwrap();
        let tt = transpose_blocked(&t, q, p, &cfg).unwrap();
        assert_eq!(tt.to_vec().unwrap(), data);
    }

    #[test]
    fn tiled_beats_naive_on_io() {
        let device = EmConfig::new(64, 64).ram_disk();
        let (p, q) = (128, 128);
        let data = matrix(p, q);
        let input = ExtVec::from_slice(device.clone(), &data).unwrap();

        let before = device.stats().snapshot();
        transpose_blocked(&input, p, q, &SortConfig::new(512)).unwrap();
        let blocked = device.stats().snapshot().since(&before).total();

        let before = device.stats().snapshot();
        transpose_naive(&input, p, q).unwrap();
        let naive = device.stats().snapshot().since(&before).total();

        let n = p * q;
        let scan = n / 8;
        assert!(naive >= 2 * n, "naive is ~2 I/Os per record: {naive}");
        assert!(
            blocked <= 8 * scan,
            "blocked should be O(N/B): {blocked} vs scan {scan}"
        );
    }

    #[test]
    fn single_row_and_column() {
        let device = EmConfig::new(64, 8).ram_disk();
        let data = matrix(1, 30);
        let input = ExtVec::from_slice(device, &data).unwrap();
        let out = transpose_blocked(&input, 1, 30, &SortConfig::new(64)).unwrap();
        assert_eq!(
            out.to_vec().unwrap(),
            data,
            "transpose of a row vector is the same sequence"
        );
    }

    #[test]
    #[should_panic(expected = "matrix shape mismatch")]
    fn shape_mismatch_panics() {
        let device = EmConfig::new(64, 8).ram_disk();
        let input = ExtVec::from_slice(device, &[1u64, 2, 3]).unwrap();
        let _ = transpose_naive(&input, 2, 2);
    }
}
