//! External permuting — both sides of `Permute(N) = Θ(min(N, Sort(N)))`.
//!
//! Given records `x_0 … x_{N−1}` and destinations `d_0 … d_{N−1}` (a
//! permutation of `0 … N−1`), produce the array with `out[d_i] = x_i`.
//!
//! * [`permute_naive`] moves one record at a time: a scan of the input plus a
//!   random-access write per record — `Θ(N)` I/Os.  In internal memory this
//!   is optimal; in external memory it is the *baseline* the sorting-based
//!   method beats whenever `B` is non-trivial.
//! * [`permute_by_sort`] tags each record with its destination and sorts by
//!   it — `Θ(Sort(N))` I/Os.
//!
//! The crossover between the two as `B` grows is experiment F3, one of the
//! survey's signature "external memory is different" results.

use em_core::{ExtVec, ExtVecWriter, Record};
use pdm::Result;

use crate::{merge_sort_by, SortConfig};

/// Apply a permutation one record at a time: `Θ(N)` I/Os.
///
/// `dest` must have the same length as `input` and hold a permutation of
/// `0..N`; `out[dest[i]] = input[i]`.  Costs `2·⌈N/B⌉` sequential reads plus
/// `2N` random I/Os (read-modify-write per record).
pub fn permute_naive<R: Record>(input: &ExtVec<R>, dest: &ExtVec<u64>) -> Result<ExtVec<R>> {
    assert_eq!(
        input.len(),
        dest.len(),
        "destination vector length mismatch"
    );
    let out = ExtVec::with_len(input.device().clone(), input.len())?;
    let mut records = input.reader();
    let mut dests = dest.reader();
    while let (Some(r), Some(d)) = (records.try_next()?, dests.try_next()?) {
        assert!(d < input.len(), "destination {d} out of range");
        out.set(d, &r)?;
    }
    Ok(out)
}

/// Apply a permutation by sorting `(destination, record)` pairs:
/// `Θ(Sort(N))` I/Os.
///
/// `cfg.mem_records` is interpreted in records of `R`; the internal pair
/// records are bigger, so the pair-sort budget is scaled down to keep the
/// byte budget identical.
pub fn permute_by_sort<R: Record>(
    input: &ExtVec<R>,
    dest: &ExtVec<u64>,
    cfg: &SortConfig,
) -> Result<ExtVec<R>> {
    assert_eq!(
        input.len(),
        dest.len(),
        "destination vector length mismatch"
    );
    let device = input.device().clone();

    // Tag: (destination, record).
    let mut w: ExtVecWriter<(u64, R)> = ExtVecWriter::new(device.clone());
    {
        let mut records = input.reader();
        let mut dests = dest.reader();
        while let (Some(r), Some(d)) = (records.try_next()?, dests.try_next()?) {
            assert!(d < input.len(), "destination {d} out of range");
            w.push((d, r))?;
        }
    }
    let tagged = w.finish()?;

    // Sort by destination with a byte-equivalent memory budget.
    let pair_cfg = scale_config::<R>(cfg);
    let sorted = merge_sort_by(&tagged, &pair_cfg, |a, b| a.0 < b.0)?;
    tagged.free()?;

    // Strip tags.
    let mut out: ExtVecWriter<R> = ExtVecWriter::new(device);
    let mut reader = sorted.reader();
    while let Some((_, r)) = reader.try_next()? {
        out.push(r)?;
    }
    drop(reader);
    sorted.free()?;
    out.finish()
}

/// Compute the inverse permutation: `inv[perm[i]] = i`, in `Θ(Sort(N))`
/// I/Os.  Building block for the graph algorithms (rank → position maps).
pub fn invert_permutation(perm: &ExtVec<u64>, cfg: &SortConfig) -> Result<ExtVec<u64>> {
    let device = perm.device().clone();
    let mut w: ExtVecWriter<(u64, u64)> = ExtVecWriter::new(device.clone());
    {
        let mut reader = perm.reader();
        let mut i = 0u64;
        while let Some(p) = reader.try_next()? {
            w.push((p, i))?;
            i += 1;
        }
    }
    let tagged = w.finish()?;
    let pair_cfg = scale_config::<u64>(cfg);
    let sorted = merge_sort_by(&tagged, &pair_cfg, |a, b| a.0 < b.0)?;
    tagged.free()?;
    let mut out: ExtVecWriter<u64> = ExtVecWriter::new(device);
    let mut reader = sorted.reader();
    while let Some((_, i)) = reader.try_next()? {
        out.push(i)?;
    }
    drop(reader);
    sorted.free()?;
    out.finish()
}

/// Scale a record-count budget for `R` down to the equivalent budget for
/// `(u64, R)` pairs (same byte budget).
fn scale_config<R: Record>(cfg: &SortConfig) -> SortConfig {
    let scaled = (cfg.mem_records * R::BYTES / (u64::BYTES + R::BYTES)).max(1);
    SortConfig {
        mem_records: scaled,
        ..*cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::{bounds, EmConfig};
    use rand::prelude::*;

    fn device_b8() -> pdm::SharedDevice {
        EmConfig::new(64, 8).ram_disk()
    }

    fn random_perm(n: u64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p: Vec<u64> = (0..n).collect();
        p.shuffle(&mut rng);
        p
    }

    fn apply_in_memory<R: Clone + Default>(data: &[R], dest: &[u64]) -> Vec<R> {
        let mut out = vec![R::default(); data.len()];
        for (r, &d) in data.iter().zip(dest) {
            out[d as usize] = r.clone();
        }
        out
    }

    #[test]
    fn naive_matches_reference() {
        let device = device_b8();
        let n = 500u64;
        let data: Vec<u64> = (0..n).map(|i| i * 10).collect();
        let perm = random_perm(n, 21);
        let input = ExtVec::from_slice(device.clone(), &data).unwrap();
        let dest = ExtVec::from_slice(device, &perm).unwrap();
        let out = permute_naive(&input, &dest).unwrap();
        assert_eq!(out.to_vec().unwrap(), apply_in_memory(&data, &perm));
    }

    #[test]
    fn sort_based_matches_reference() {
        let device = device_b8();
        let n = 3000u64;
        let data: Vec<u64> = (0..n).map(|i| i * 7 + 1).collect();
        let perm = random_perm(n, 22);
        let input = ExtVec::from_slice(device.clone(), &data).unwrap();
        let dest = ExtVec::from_slice(device, &perm).unwrap();
        let out = permute_by_sort(&input, &dest, &SortConfig::new(128)).unwrap();
        assert_eq!(out.to_vec().unwrap(), apply_in_memory(&data, &perm));
    }

    #[test]
    fn both_agree_on_identity_and_reverse() {
        let device = device_b8();
        let n = 200u64;
        let data: Vec<u64> = (0..n).collect();
        for perm in [(0..n).collect::<Vec<_>>(), (0..n).rev().collect()] {
            let input = ExtVec::from_slice(device.clone(), &data).unwrap();
            let dest = ExtVec::from_slice(device.clone(), &perm).unwrap();
            let a = permute_naive(&input, &dest).unwrap().to_vec().unwrap();
            let b = permute_by_sort(&input, &dest, &SortConfig::new(64))
                .unwrap()
                .to_vec()
                .unwrap();
            assert_eq!(a, b);
            assert_eq!(a, apply_in_memory(&data, &perm));
        }
    }

    #[test]
    fn naive_costs_theta_n_sort_costs_sort_n() {
        // Use a realistic block size (B = 32 records) so the crossover of
        // Permute(N) = min(N, Sort(N)) is clearly on the sorting side.
        let device = EmConfig::new(256, 16).ram_disk();
        let n = 4096u64;
        let b = 32usize;
        let m = 512usize;
        let data: Vec<u64> = (0..n).collect();
        let perm = random_perm(n, 23);
        let input = ExtVec::from_slice(device.clone(), &data).unwrap();
        let dest = ExtVec::from_slice(device.clone(), &perm).unwrap();

        let before = device.stats().snapshot();
        permute_naive(&input, &dest).unwrap();
        let naive = device.stats().snapshot().since(&before).total();

        let before = device.stats().snapshot();
        permute_by_sort(&input, &dest, &SortConfig::new(m)).unwrap();
        let sorted = device.stats().snapshot().since(&before).total();

        // Naive ≈ 2N random I/Os (+ scans); sort-based ≈ O(Sort).
        assert!(naive as f64 >= 2.0 * n as f64, "naive={naive}");
        assert!(
            (sorted as f64) < bounds::sort(n, m, b) * 20.0,
            "sorted={sorted}"
        );
        assert!(
            sorted < naive,
            "with B=8 sorting should already win: {sorted} vs {naive}"
        );
    }

    #[test]
    fn invert_permutation_round_trips() {
        let device = device_b8();
        let n = 1000u64;
        let perm = random_perm(n, 24);
        let pv = ExtVec::from_slice(device.clone(), &perm).unwrap();
        let inv = invert_permutation(&pv, &SortConfig::new(64)).unwrap();
        let inv_v = inv.to_vec().unwrap();
        for (i, &p) in perm.iter().enumerate() {
            assert_eq!(inv_v[p as usize], i as u64);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let device = device_b8();
        let input = ExtVec::from_slice(device.clone(), &[1u64, 2, 3]).unwrap();
        let dest = ExtVec::from_slice(device, &[0u64, 1]).unwrap();
        let _ = permute_naive(&input, &dest);
    }

    #[test]
    fn empty_permutation() {
        let device = device_b8();
        let input: ExtVec<u64> = ExtVec::new(device.clone());
        let dest: ExtVec<u64> = ExtVec::new(device);
        assert_eq!(permute_naive(&input, &dest).unwrap().len(), 0);
        assert_eq!(
            permute_by_sort(&input, &dest, &SortConfig::new(64))
                .unwrap()
                .len(),
            0
        );
    }
}
