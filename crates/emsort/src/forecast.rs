//! Forecasting: key-directed prefetch scheduling for the k-way merge.
//!
//! With `D` independent disks, a merge that read-ahead-buffers each run
//! uniformly wastes its memory on runs that will not be consumed for a long
//! time.  Vitter's survey (§3.2, §5.1) describes the classical fix,
//! *forecasting*: because each run is consumed in order, the run whose next
//! unbuffered block carries the **smallest leading key** is the one the merge
//! will demand first — so that block should be fetched first.  The leading
//! keys are recorded for free when the runs are written (see
//! [`em_core::ExtVec`] block-head metadata), and a [`Forecaster`] uses them
//! to order prefetch submissions across all `k` runs sharing one buffer
//! pool.
//!
//! Forecasting is pure *scheduling*: every block it submits is one the
//! demand-paged merge would read anyway, merely issued earlier and in a
//! smarter order.  Transfer counts are therefore identical with forecasting
//! on or off, and — because the merge consumes every run to its end — no
//! prefetched block is ever wasted.

use std::sync::Arc;

use em_core::{BudgetGuard, ExtVecReader, MemBudget, Record};

/// Shared prefetch pool for the readers of one k-way merge, scheduled by
/// leading key.
///
/// The pool holds up to `pool` blocks in flight across *all* runs; each call
/// to [`pump`](Self::pump) tops it up by repeatedly submitting the most
/// urgent unfetched block (smallest leading key, ties toward the lower run
/// index).  Memory honesty: the pool's blocks are charged against the
/// sort's [`MemBudget`] here, once, and the managed readers deliberately
/// hold no per-reader spares — see
/// [`ExtVec::reader_forecast`](em_core::ExtVec::reader_forecast).
pub(crate) struct Forecaster {
    pool: usize,
    /// Independent I/O lanes behind the device ([`BlockDevice::lanes`]
    /// (pdm::BlockDevice::lanes)); 1 for a plain disk.
    lanes: usize,
    /// Cap on in-flight blocks per lane.  With one lane this equals `pool`
    /// (the classic global policy); with `D` independent lanes the pool is
    /// spread so no disk hoards it while others idle — the per-disk queue
    /// discipline that keeps full-fan-in merging D-parallel.
    per_lane: usize,
    _reserve: Option<BudgetGuard>,
}

impl Forecaster {
    /// Charge up to `k·depth` blocks of `per_block` records from `budget`
    /// headroom, degrading to whatever whole number of blocks fits (possibly
    /// zero, in which case forecasting is a no-op and the merge runs
    /// synchronously).  `lanes` is the device's independent-disk count; the
    /// granted pool is balanced across lanes, keeping at least `depth`
    /// outstanding reads available to every disk.
    pub fn new(
        budget: &Arc<MemBudget>,
        k: usize,
        depth: usize,
        per_block: usize,
        lanes: usize,
    ) -> Self {
        let reserve = budget.try_charge_units(k * depth, per_block);
        let pool = reserve.as_ref().map_or(0, |g| g.records() / per_block);
        let lanes = lanes.max(1);
        // With one lane the cap degenerates to the whole pool (global
        // policy, unchanged from the single-disk forecaster); with D lanes
        // each disk gets an even share, but never less than the configured
        // overlap depth.
        let per_lane = depth.max(pool.div_ceil(lanes));
        Forecaster {
            pool,
            lanes,
            per_lane,
            _reserve: reserve,
        }
    }

    /// Blocks the pool may keep in flight.
    pub fn pool(&self) -> usize {
        self.pool
    }

    /// Cap on in-flight blocks per I/O lane.
    #[cfg(test)]
    pub fn per_lane(&self) -> usize {
        self.per_lane
    }

    /// Top the pool up: while capacity remains, submit the next unfetched
    /// block of the run whose leading key is smallest under `less` (ties
    /// toward the lower run index), skipping runs whose next block lands on
    /// a lane already at its per-disk cap.  Runs without block-head metadata
    /// or with every block already submitted are skipped.  Blocks that span
    /// all lanes (striped placement) are bounded only by the global pool —
    /// every striped transfer occupies all D disks at once, so a per-lane
    /// cap would be meaningless for them.
    pub fn pump<R, F>(&self, readers: &mut [ExtVecReader<'_, R>], less: F)
    where
        R: Record,
        F: Fn(&R, &R) -> bool + Copy,
    {
        if self.pool == 0 {
            return;
        }
        let mut in_flight: usize = readers.iter().map(|r| r.in_flight()).sum();
        let mut per_lane = vec![0usize; self.lanes];
        for rd in readers.iter() {
            rd.add_in_flight_per_lane(&mut per_lane);
        }
        while in_flight < self.pool {
            let mut best: Option<usize> = None;
            for (i, rd) in readers.iter().enumerate() {
                let Some(head) = rd.next_fetch_head() else {
                    continue;
                };
                if let Some(lane) = rd.next_fetch_lane() {
                    if per_lane[lane % self.lanes] >= self.per_lane {
                        continue; // this disk's queue is full; look elsewhere
                    }
                }
                match best {
                    None => best = Some(i),
                    Some(b) => {
                        let best_head = readers[b].next_fetch_head().expect("best has a head");
                        if less(head, best_head) {
                            best = Some(i);
                        }
                    }
                }
            }
            let Some(i) = best else { return };
            let lane = readers[i].next_fetch_lane();
            if !readers[i].prefetch_one() {
                return; // per-reader capacity exhausted; pool effectively full
            }
            if let Some(lane) = lane {
                per_lane[lane % self.lanes] += 1;
            }
            in_flight += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::{EmConfig, ExtVec};

    /// Two runs, B = 8: run 0 holds small keys, run 1 large ones.  The
    /// forecaster must spend the whole pool on run 0 first.
    #[test]
    fn pump_prioritizes_smallest_leading_key() {
        let cfg = EmConfig::new(64, 16);
        let device = cfg.ram_disk();
        let small: Vec<u64> = (0..32).collect();
        let large: Vec<u64> = (1000..1032).collect();
        let a = ExtVec::from_slice(device.clone(), &small).unwrap();
        let b = ExtVec::from_slice(device.clone(), &large).unwrap();
        assert!(a.has_block_heads() && b.has_block_heads());

        let budget = MemBudget::new(64);
        let fc = Forecaster::new(&budget, 2, 2, 8, 1);
        assert_eq!(fc.pool(), 4);
        let mut readers = vec![
            a.reader_forecast(0, fc.pool()),
            b.reader_forecast(0, fc.pool()),
        ];
        fc.pump(&mut readers, |x: &u64, y: &u64| x < y);
        // All four of run 0's blocks beat run 1's first block (head 1000).
        assert_eq!(
            readers[0].in_flight(),
            4,
            "every pool slot goes to the small-key run"
        );
        assert_eq!(readers[1].in_flight(), 0);

        // Drain run 0 completely; the pool then shifts to run 1.
        while readers[0].try_next().unwrap().is_some() {
            fc.pump(&mut readers, |x: &u64, y: &u64| x < y);
        }
        assert_eq!(readers[0].in_flight(), 0);
        assert_eq!(readers[1].in_flight(), 4);
        while readers[1].try_next().unwrap().is_some() {}
        let snap = device.stats().snapshot();
        assert_eq!(snap.prefetch_wasted(), 0);
        assert_eq!(
            snap.forecast_issued(),
            8,
            "every block was forecast-submitted"
        );
        assert_eq!(snap.forecast_hits(), 8);
    }

    #[test]
    fn interleaved_keys_alternate_submissions() {
        let cfg = EmConfig::new(64, 16);
        let device = cfg.ram_disk();
        // Block heads: run 0 → 0, 20, 40, 60; run 1 → 10, 30, 50, 70.
        let r0: Vec<u64> = (0..32).map(|i| (i / 8) * 20 + i % 8).collect();
        let r1: Vec<u64> = (0..32).map(|i| 10 + (i / 8) * 20 + i % 8).collect();
        let a = ExtVec::from_slice(device.clone(), &r0).unwrap();
        let b = ExtVec::from_slice(device.clone(), &r1).unwrap();
        let budget = MemBudget::new(32);
        let fc = Forecaster::new(&budget, 2, 2, 8, 1);
        assert_eq!(fc.pool(), 4);
        let mut readers = vec![
            a.reader_forecast(0, fc.pool()),
            b.reader_forecast(0, fc.pool()),
        ];
        fc.pump(&mut readers, |x: &u64, y: &u64| x < y);
        // Urgency order 0,10,20,30 → two blocks in flight per run.
        assert_eq!(readers[0].in_flight(), 2);
        assert_eq!(readers[1].in_flight(), 2);
    }

    #[test]
    fn zero_pool_is_a_noop() {
        let cfg = EmConfig::new(64, 16);
        let device = cfg.ram_disk();
        let a = ExtVec::from_slice(device.clone(), &(0u64..16).collect::<Vec<_>>()).unwrap();
        let budget = MemBudget::new(4); // less than one block
        let fc = Forecaster::new(&budget, 1, 2, 8, 1);
        assert_eq!(fc.pool(), 0);
        let mut readers = vec![a.reader_forecast(0, 0)];
        fc.pump(&mut readers, |x: &u64, y: &u64| x < y);
        assert_eq!(readers[0].in_flight(), 0);
        // Demand reads still work and count normally.
        assert_eq!(readers[0].by_ref().count(), 16);
        assert_eq!(device.stats().snapshot().forecast_issued(), 0);
    }

    #[test]
    fn pool_degrades_to_budget_headroom() {
        let budget = MemBudget::new(100);
        let _working = budget.charge(80);
        let fc = Forecaster::new(&budget, 4, 3, 8, 1); // wants 12 blocks, 2 fit
        assert_eq!(fc.pool(), 2);
        assert_eq!(budget.used(), 96);
    }

    #[test]
    fn single_lane_cap_is_whole_pool() {
        let budget = MemBudget::new(1000);
        let fc = Forecaster::new(&budget, 8, 2, 8, 1);
        assert_eq!(fc.pool(), 16);
        assert_eq!(fc.per_lane(), 16, "one lane gets the global policy");
    }

    #[test]
    fn multi_lane_cap_splits_pool_evenly() {
        let budget = MemBudget::new(1000);
        let fc = Forecaster::new(&budget, 8, 2, 8, 4);
        assert_eq!(fc.pool(), 16);
        assert_eq!(fc.per_lane(), 4, "16 blocks over 4 lanes");
        // Degenerate pool still allows `depth` per disk.
        let tight = MemBudget::new(24);
        let fc2 = Forecaster::new(&tight, 8, 2, 8, 4); // 3 blocks granted
        assert_eq!(fc2.pool(), 3);
        assert_eq!(fc2.per_lane(), 2);
    }

    /// On an independent-placement array the pump must respect the per-lane
    /// cap: when a lane's queue is full, the next-most-urgent block on a
    /// *different* lane is submitted instead, even though it carries a
    /// larger key than a block the full lane still holds.
    #[test]
    fn pump_caps_outstanding_reads_per_lane() {
        use pdm::{DiskArray, Placement};

        let device: pdm::SharedDevice = DiskArray::new_ram(2, 64, Placement::Independent);
        // Six single-block runs; round-robin allocation alternates lanes, so
        // creation order pins each run's lane.  The three smallest heads all
        // live on lane 0; a globally greedy pool of 4 would take v5 (head 2)
        // before v4 (head 101).
        let v1 = ExtVec::from_slice(device.clone(), &(0u64..8).collect::<Vec<_>>()).unwrap();
        let v2 = ExtVec::from_slice(device.clone(), &(100u64..108).collect::<Vec<_>>()).unwrap();
        let v3 = ExtVec::from_slice(device.clone(), &(10u64..18).collect::<Vec<_>>()).unwrap();
        let v4 = ExtVec::from_slice(device.clone(), &(101u64..109).collect::<Vec<_>>()).unwrap();
        let v5 = ExtVec::from_slice(device.clone(), &(20u64..28).collect::<Vec<_>>()).unwrap();
        let v6 = ExtVec::from_slice(device.clone(), &(102u64..110).collect::<Vec<_>>()).unwrap();
        let runs = [&v1, &v2, &v3, &v4, &v5, &v6];

        // Budget grants only 4 of the requested 6 blocks → per-lane cap 2.
        let budget = MemBudget::new(32);
        let fc = Forecaster::new(&budget, 6, 1, 8, 2);
        assert_eq!(fc.pool(), 4);
        assert_eq!(fc.per_lane(), 2);
        let mut readers: Vec<_> = runs
            .iter()
            .map(|v| v.reader_forecast(0, fc.pool()))
            .collect();
        fc.pump(&mut readers, |x: &u64, y: &u64| x < y);
        // Lane 0 (runs v1, v3, v5 with heads 0, 10, 20) fills at two blocks;
        // the remaining two slots go to lane 1 (v2, v4) despite v5's
        // smaller head — that's the per-disk queue discipline.
        let in_flight: Vec<usize> = readers.iter().map(|r| r.in_flight()).collect();
        assert_eq!(
            in_flight,
            vec![1, 1, 1, 1, 0, 0],
            "v5 (lane 0, head 20) must be skipped for v2/v4 on lane 1"
        );
        let mut per_lane = [0usize; 2];
        for rd in &readers {
            rd.add_in_flight_per_lane(&mut per_lane);
        }
        assert_eq!(per_lane, [2, 2]);

        // Draining everything still wastes nothing and hits every forecast.
        for rd in &mut readers {
            while rd.try_next().unwrap().is_some() {}
        }
        drop(readers);
        let snap = device.stats().snapshot();
        assert_eq!(snap.prefetch_wasted(), 0);
        assert_eq!(snap.forecast_issued(), 4);
        // Per-lane split is visible in the stats.
        assert_eq!(snap.forecast_issued_on(0), 2);
        assert_eq!(snap.forecast_issued_on(1), 2);
    }
}
