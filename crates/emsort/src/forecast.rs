//! Forecasting: key-directed prefetch scheduling for the k-way merge.
//!
//! With `D` independent disks, a merge that read-ahead-buffers each run
//! uniformly wastes its memory on runs that will not be consumed for a long
//! time.  Vitter's survey (§3.2, §5.1) describes the classical fix,
//! *forecasting*: because each run is consumed in order, the run whose next
//! unbuffered block carries the **smallest leading key** is the one the merge
//! will demand first — so that block should be fetched first.  The leading
//! keys are recorded for free when the runs are written (see
//! [`em_core::ExtVec`] block-head metadata), and a [`Forecaster`] uses them
//! to order prefetch submissions across all `k` runs sharing one buffer
//! pool.
//!
//! Forecasting is pure *scheduling*: every block it submits is one the
//! demand-paged merge would read anyway, merely issued earlier and in a
//! smarter order.  Transfer counts are therefore identical with forecasting
//! on or off, and — because the merge consumes every run to its end — no
//! prefetched block is ever wasted.

use std::sync::Arc;

use em_core::{BudgetGuard, ExtVecReader, MemBudget, Record};

/// Shared prefetch pool for the readers of one k-way merge, scheduled by
/// leading key.
///
/// The pool holds up to `pool` blocks in flight across *all* runs; each call
/// to [`pump`](Self::pump) tops it up by repeatedly submitting the most
/// urgent unfetched block (smallest leading key, ties toward the lower run
/// index).  Memory honesty: the pool's blocks are charged against the
/// sort's [`MemBudget`] here, once, and the managed readers deliberately
/// hold no per-reader spares — see
/// [`ExtVec::reader_forecast`](em_core::ExtVec::reader_forecast).
pub(crate) struct Forecaster {
    pool: usize,
    _reserve: Option<BudgetGuard>,
}

impl Forecaster {
    /// Charge up to `k·depth` blocks of `per_block` records from `budget`
    /// headroom, degrading to whatever whole number of blocks fits (possibly
    /// zero, in which case forecasting is a no-op and the merge runs
    /// synchronously).
    pub fn new(budget: &Arc<MemBudget>, k: usize, depth: usize, per_block: usize) -> Self {
        let reserve = budget.try_charge_units(k * depth, per_block);
        let pool = reserve.as_ref().map_or(0, |g| g.records() / per_block);
        Forecaster {
            pool,
            _reserve: reserve,
        }
    }

    /// Blocks the pool may keep in flight.
    pub fn pool(&self) -> usize {
        self.pool
    }

    /// Top the pool up: while capacity remains, submit the next unfetched
    /// block of the run whose leading key is smallest under `less` (ties
    /// toward the lower run index).  Runs without block-head metadata or
    /// with every block already submitted are skipped.
    pub fn pump<R, F>(&self, readers: &mut [ExtVecReader<'_, R>], less: F)
    where
        R: Record,
        F: Fn(&R, &R) -> bool + Copy,
    {
        if self.pool == 0 {
            return;
        }
        let mut in_flight: usize = readers.iter().map(|r| r.in_flight()).sum();
        while in_flight < self.pool {
            let mut best: Option<usize> = None;
            for (i, rd) in readers.iter().enumerate() {
                let Some(head) = rd.next_fetch_head() else {
                    continue;
                };
                match best {
                    None => best = Some(i),
                    Some(b) => {
                        let best_head = readers[b].next_fetch_head().expect("best has a head");
                        if less(head, best_head) {
                            best = Some(i);
                        }
                    }
                }
            }
            let Some(i) = best else { return };
            if !readers[i].prefetch_one() {
                return; // per-reader capacity exhausted; pool effectively full
            }
            in_flight += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::{EmConfig, ExtVec};

    /// Two runs, B = 8: run 0 holds small keys, run 1 large ones.  The
    /// forecaster must spend the whole pool on run 0 first.
    #[test]
    fn pump_prioritizes_smallest_leading_key() {
        let cfg = EmConfig::new(64, 16);
        let device = cfg.ram_disk();
        let small: Vec<u64> = (0..32).collect();
        let large: Vec<u64> = (1000..1032).collect();
        let a = ExtVec::from_slice(device.clone(), &small).unwrap();
        let b = ExtVec::from_slice(device.clone(), &large).unwrap();
        assert!(a.has_block_heads() && b.has_block_heads());

        let budget = MemBudget::new(64);
        let fc = Forecaster::new(&budget, 2, 2, 8);
        assert_eq!(fc.pool(), 4);
        let mut readers = vec![
            a.reader_forecast(0, fc.pool()),
            b.reader_forecast(0, fc.pool()),
        ];
        fc.pump(&mut readers, |x: &u64, y: &u64| x < y);
        // All four of run 0's blocks beat run 1's first block (head 1000).
        assert_eq!(
            readers[0].in_flight(),
            4,
            "every pool slot goes to the small-key run"
        );
        assert_eq!(readers[1].in_flight(), 0);

        // Drain run 0 completely; the pool then shifts to run 1.
        while readers[0].try_next().unwrap().is_some() {
            fc.pump(&mut readers, |x: &u64, y: &u64| x < y);
        }
        assert_eq!(readers[0].in_flight(), 0);
        assert_eq!(readers[1].in_flight(), 4);
        while readers[1].try_next().unwrap().is_some() {}
        let snap = device.stats().snapshot();
        assert_eq!(snap.prefetch_wasted(), 0);
        assert_eq!(
            snap.forecast_issued(),
            8,
            "every block was forecast-submitted"
        );
        assert_eq!(snap.forecast_hits(), 8);
    }

    #[test]
    fn interleaved_keys_alternate_submissions() {
        let cfg = EmConfig::new(64, 16);
        let device = cfg.ram_disk();
        // Block heads: run 0 → 0, 20, 40, 60; run 1 → 10, 30, 50, 70.
        let r0: Vec<u64> = (0..32).map(|i| (i / 8) * 20 + i % 8).collect();
        let r1: Vec<u64> = (0..32).map(|i| 10 + (i / 8) * 20 + i % 8).collect();
        let a = ExtVec::from_slice(device.clone(), &r0).unwrap();
        let b = ExtVec::from_slice(device.clone(), &r1).unwrap();
        let budget = MemBudget::new(32);
        let fc = Forecaster::new(&budget, 2, 2, 8);
        assert_eq!(fc.pool(), 4);
        let mut readers = vec![
            a.reader_forecast(0, fc.pool()),
            b.reader_forecast(0, fc.pool()),
        ];
        fc.pump(&mut readers, |x: &u64, y: &u64| x < y);
        // Urgency order 0,10,20,30 → two blocks in flight per run.
        assert_eq!(readers[0].in_flight(), 2);
        assert_eq!(readers[1].in_flight(), 2);
    }

    #[test]
    fn zero_pool_is_a_noop() {
        let cfg = EmConfig::new(64, 16);
        let device = cfg.ram_disk();
        let a = ExtVec::from_slice(device.clone(), &(0u64..16).collect::<Vec<_>>()).unwrap();
        let budget = MemBudget::new(4); // less than one block
        let fc = Forecaster::new(&budget, 1, 2, 8);
        assert_eq!(fc.pool(), 0);
        let mut readers = vec![a.reader_forecast(0, 0)];
        fc.pump(&mut readers, |x: &u64, y: &u64| x < y);
        assert_eq!(readers[0].in_flight(), 0);
        // Demand reads still work and count normally.
        assert_eq!(readers[0].by_ref().count(), 16);
        assert_eq!(device.stats().snapshot().forecast_issued(), 0);
    }

    #[test]
    fn pool_degrades_to_budget_headroom() {
        let budget = MemBudget::new(100);
        let _working = budget.charge(80);
        let fc = Forecaster::new(&budget, 4, 3, 8); // wants 12 blocks, 2 fit
        assert_eq!(fc.pool(), 2);
        assert_eq!(budget.used(), 96);
    }
}
