//! Fixed-size record encodings.
//!
//! External-memory algorithms move data in blocks, so the byte layout of a
//! record must be explicit and fixed.  [`Record`] is implemented for the
//! primitive integer types and small tuples here; domain crates implement it
//! for their own structs (edges, events, hash entries, …).  All encodings are
//! little-endian.

/// A value with a fixed-size binary encoding.
///
/// `BYTES` must be positive and no larger than the device block size in use;
/// [`ExtVec`](crate::ExtVec) packs `block_size / BYTES` records per block.
pub trait Record: Clone + Send + 'static {
    /// Encoded size in bytes.
    const BYTES: usize;

    /// Serialize into `buf` (`buf.len() == Self::BYTES`).
    fn write_to(&self, buf: &mut [u8]);

    /// Deserialize from `buf` (`buf.len() == Self::BYTES`).
    fn read_from(buf: &[u8]) -> Self;
}

macro_rules! int_record {
    ($($t:ty),*) => {$(
        impl Record for $t {
            const BYTES: usize = std::mem::size_of::<$t>();
            #[inline]
            fn write_to(&self, buf: &mut [u8]) {
                buf.copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_from(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf.try_into().expect("record size"))
            }
        }
    )*};
}

int_record!(u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! tuple_record {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Record),+> Record for ($($name,)+) {
            const BYTES: usize = 0 $(+ $name::BYTES)+;
            #[inline]
            fn write_to(&self, buf: &mut [u8]) {
                let mut at = 0;
                $(
                    self.$idx.write_to(&mut buf[at..at + $name::BYTES]);
                    at += $name::BYTES;
                )+
                let _ = at;
            }
            #[inline]
            #[allow(unused_assignments)]
            fn read_from(buf: &[u8]) -> Self {
                let mut at = 0;
                ($(
                    {
                        let v = $name::read_from(&buf[at..at + $name::BYTES]);
                        at += $name::BYTES;
                        v
                    },
                )+)
            }
        }
    };
}

tuple_record!(A: 0);
tuple_record!(A: 0, B: 1);
tuple_record!(A: 0, B: 1, C: 2);
tuple_record!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<R: Record + PartialEq + std::fmt::Debug>(r: R) {
        let mut buf = vec![0u8; R::BYTES];
        r.write_to(&mut buf);
        assert_eq!(R::read_from(&buf), r);
    }

    #[test]
    fn primitive_round_trips() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(u16::MAX);
        round_trip(123456789u32);
        round_trip(u64::MAX);
        round_trip(-1i8);
        round_trip(i16::MIN);
        round_trip(-123456789i32);
        round_trip(i64::MIN);
    }

    #[test]
    fn tuple_round_trips() {
        round_trip((7u64,));
        round_trip((1u64, 2u64));
        round_trip((u32::MAX, -5i64, 9u8));
        round_trip((1u8, 2u16, 3u32, 4u64));
    }

    #[test]
    fn tuple_sizes_are_sums() {
        assert_eq!(<(u64, u64)>::BYTES, 16);
        assert_eq!(<(u32, i64, u8)>::BYTES, 13);
        assert_eq!(<(u8, u16, u32, u64)>::BYTES, 15);
    }

    #[test]
    fn encoding_is_little_endian() {
        let mut buf = [0u8; 4];
        0x0A0B0C0Du32.write_to(&mut buf);
        assert_eq!(buf, [0x0D, 0x0C, 0x0B, 0x0A]);
    }
}
