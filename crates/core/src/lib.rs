//! # `em-core` — the I/O-model framework
//!
//! This crate is the survey's "Section 2" in code: the machine parameters of
//! the Parallel Disk Model, the closed-form I/O bounds that every later
//! experiment is checked against, and the typed data plumbing every
//! external-memory algorithm in the workspace shares.
//!
//! The PDM parameters (records, not bytes):
//!
//! ```text
//! N = problem size     M = internal memory capacity    B = records per block
//! D = number of disks  Z = answer size
//! n = N/B              m = M/B                          z = Z/B
//! ```
//!
//! * [`Record`] — fixed-size binary encoding; block layout in an EM library
//!   must be explicit, so records serialize themselves into byte slices.
//! * [`EmConfig`] — (block size, memory blocks) pair; converts between bytes
//!   and records and derives `M`, `B`, `m` for any record type.
//! * [`bounds`] — `Scan`, `Sort`, `Search`, `Permute`, `Transpose` formulas
//!   used by the experiment harness as overlays.
//! * [`ExtVec`] — a typed external array (sequence of device blocks) with
//!   block-granular access; the universal currency between algorithms.
//! * [`ExtVecReader`] / [`ExtVecWriter`] — buffered sequential streams over
//!   external arrays, each holding exactly one block of memory.
//! * [`MemBudget`] — explicit accounting of the `M` records an algorithm is
//!   allowed to hold; sorts charge their buffers against it so the model is
//!   enforced, not assumed.
//!
//! ```
//! use em_core::{EmConfig, ExtVec};
//!
//! // A machine with 4 KiB blocks and 8 blocks of memory.
//! let cfg = EmConfig::new(4096, 8);
//! let device = cfg.ram_disk();
//!
//! // An external array; every access is counted by the device.
//! let v = ExtVec::from_slice(device.clone(), &(0u64..10_000).collect::<Vec<_>>())?;
//! let before = device.stats().snapshot();
//! let sum: u64 = v.reader().sum();
//! let ios = device.stats().snapshot().since(&before).reads();
//! assert_eq!(sum, 10_000 * 9_999 / 2);
//! assert_eq!(ios, v.num_blocks() as u64); // exactly one read per block
//! # Ok::<(), pdm::PdmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod append_buffer;
pub mod bounds;
mod budget;
mod config;
mod ext_vec;
mod record;
mod stream;

pub use append_buffer::AppendBuffer;
pub use budget::{BudgetGuard, MemBudget};
pub use config::EmConfig;
pub use ext_vec::ExtVec;
pub use record::Record;
pub use stream::{ExtVecReader, ExtVecWriter, IoWaitSink};

// Re-export the substrate so dependents need only one import path.
pub use pdm;
/// The workspace's one hash family (FNV-1a, splitmix, seeded bucket
/// hashing) — canonical home is `pdm::hash`, surfaced here so algorithm
/// crates and benches need only `em_core`.
pub use pdm::hash;
