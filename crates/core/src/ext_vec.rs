//! Typed external arrays.
//!
//! An [`ExtVec<R>`] is a sequence of `N` records stored across
//! `⌈N/B⌉` device blocks — the universal on-disk container the workspace's
//! algorithms consume and produce.  Access is block-granular: `get`/`set`
//! cost one/two I/Os, [`reader`](ExtVec::reader) streams sequentially at
//! `1/B` I/Os per record, and whole-block reads/writes support algorithms
//! (transpose, distribution) that manage their own blocking.
//!
//! The block-id table (`⌈N/B⌉` ids) lives in internal memory.  This mirrors
//! practice (STXXL and TPIE both keep block maps resident) and is accounted
//! for in DESIGN.md; it is `O(N/B)` words, asymptotically below the `Ω(B)`
//! memory the model already grants.
//!
//! Arrays produced by a streaming writer additionally carry **forecast
//! metadata**: the leading (first) record of every block, recorded for free
//! as the block is encoded.  This is the "smallest key in each run's next
//! block" that Vitter's merge sort consults to decide which block to fetch
//! next; like the block map it is `O(N/B)` records of resident memory, in
//! the same accounting class.

use std::marker::PhantomData;
use std::sync::Arc;

use pdm::{BlockId, Result, SharedDevice};

use crate::budget::MemBudget;
use crate::record::Record;
use crate::stream::{ExtVecReader, ExtVecWriter};

/// A typed external array of records on a block device.
pub struct ExtVec<R: Record> {
    device: SharedDevice,
    blocks: Vec<BlockId>,
    len: u64,
    /// Leading record of each block (forecast metadata); empty when the
    /// array was not produced by a streaming writer.
    heads: Vec<R>,
    _marker: PhantomData<fn() -> R>,
}

impl<R: Record> ExtVec<R> {
    /// Records per block on `device`.
    pub fn per_block_on(device: &SharedDevice) -> usize {
        let b = device.block_size() / R::BYTES;
        assert!(b >= 1, "record larger than device block");
        b
    }

    /// An empty array on `device`.
    pub fn new(device: SharedDevice) -> Self {
        ExtVec {
            device,
            blocks: Vec::new(),
            len: 0,
            heads: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Build from an in-memory slice (streams through a one-block writer).
    pub fn from_slice(device: SharedDevice, records: &[R]) -> Result<Self> {
        let mut w = ExtVecWriter::new(device);
        for r in records {
            w.push(r.clone())?;
        }
        w.finish()
    }

    /// Allocate an array of `len` zero-encoded records without performing
    /// any I/O (fresh blocks are zeroed by the device).
    pub fn with_len(device: SharedDevice, len: u64) -> Result<Self> {
        let per = Self::per_block_on(&device);
        let nblocks = (len as usize).div_ceil(per);
        let mut blocks = Vec::with_capacity(nblocks);
        for _ in 0..nblocks {
            blocks.push(device.allocate()?);
        }
        Ok(ExtVec {
            device,
            blocks,
            len,
            heads: Vec::new(),
            _marker: PhantomData,
        })
    }

    /// (internal) Assemble from parts; used by the writer.  `heads` carries
    /// the leading record of each block (or is empty for no metadata).
    pub(crate) fn from_parts(
        device: SharedDevice,
        blocks: Vec<BlockId>,
        len: u64,
        heads: Vec<R>,
    ) -> Self {
        debug_assert!(heads.is_empty() || heads.len() == blocks.len());
        ExtVec {
            device,
            blocks,
            len,
            heads,
            _marker: PhantomData,
        }
    }

    /// Number of records.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the array holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records per block (`B` for this record type and device).
    pub fn per_block(&self) -> usize {
        Self::per_block_on(&self.device)
    }

    /// Number of device blocks backing the array.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The backing device.
    pub fn device(&self) -> &SharedDevice {
        &self.device
    }

    /// (internal) Device block id backing block index `bi`.
    pub(crate) fn block_id(&self, bi: usize) -> BlockId {
        self.blocks[bi]
    }

    /// Leading (first) record of block `bi`, if forecast metadata was
    /// recorded when the array was written.  Costs no I/O.
    pub fn block_head(&self, bi: usize) -> Option<&R> {
        self.heads.get(bi)
    }

    /// True if every block's leading record is known without I/O (the array
    /// was produced by a streaming writer).  Required for forecasting-driven
    /// prefetch; an empty array vacuously qualifies.
    pub fn has_block_heads(&self) -> bool {
        self.heads.len() == self.blocks.len()
    }

    /// (internal) Decode the raw bytes of block `bi` into `out` (cleared
    /// first).  Used by the prefetching reader, which obtains the bytes from
    /// an asynchronous read ticket instead of [`read_block_into`].
    ///
    /// [`read_block_into`]: Self::read_block_into
    pub(crate) fn decode_block(&self, bi: usize, bytes: &[u8], out: &mut Vec<R>) {
        let count = self.records_in_block(bi);
        out.clear();
        out.reserve(count);
        for i in 0..count {
            out.push(R::read_from(&bytes[i * R::BYTES..(i + 1) * R::BYTES]));
        }
    }

    /// Records stored in block index `bi` (the last block may be partial).
    pub fn records_in_block(&self, bi: usize) -> usize {
        let per = self.per_block() as u64;
        let start = bi as u64 * per;
        assert!(
            start < self.len || (self.len == 0 && bi == 0),
            "block index out of range"
        );
        ((self.len - start).min(per)) as usize
    }

    /// Random-access read of record `idx`.  Costs one I/O.
    pub fn get(&self, idx: u64) -> Result<R> {
        assert!(
            idx < self.len,
            "index {idx} out of range (len {})",
            self.len
        );
        let per = self.per_block() as u64;
        let (bi, off) = ((idx / per) as usize, (idx % per) as usize);
        let mut buf = self.block_buf();
        self.device.read_block(self.blocks[bi], &mut buf)?;
        Ok(R::read_from(&buf[off * R::BYTES..(off + 1) * R::BYTES]))
    }

    /// Random-access overwrite of record `idx`.  Costs two I/Os
    /// (read-modify-write of the containing block).
    pub fn set(&self, idx: u64, value: &R) -> Result<()> {
        assert!(
            idx < self.len,
            "index {idx} out of range (len {})",
            self.len
        );
        let per = self.per_block() as u64;
        let (bi, off) = ((idx / per) as usize, (idx % per) as usize);
        let mut buf = self.block_buf();
        self.device.read_block(self.blocks[bi], &mut buf)?;
        value.write_to(&mut buf[off * R::BYTES..(off + 1) * R::BYTES]);
        self.device.write_block(self.blocks[bi], &buf)
    }

    /// Read the records of block `bi` into `out` (cleared first).
    /// Costs one I/O.
    pub fn read_block_into(&self, bi: usize, out: &mut Vec<R>) -> Result<()> {
        let count = self.records_in_block(bi);
        let mut buf = self.block_buf();
        self.device.read_block(self.blocks[bi], &mut buf)?;
        out.clear();
        out.reserve(count);
        for i in 0..count {
            out.push(R::read_from(&buf[i * R::BYTES..(i + 1) * R::BYTES]));
        }
        Ok(())
    }

    /// Overwrite block `bi` with `records` (must match
    /// [`records_in_block`](Self::records_in_block)).  Costs one I/O.
    pub fn write_block(&self, bi: usize, records: &[R]) -> Result<()> {
        assert_eq!(
            records.len(),
            self.records_in_block(bi),
            "wrong record count for block {bi}"
        );
        let mut buf = self.block_buf();
        for (i, r) in records.iter().enumerate() {
            r.write_to(&mut buf[i * R::BYTES..(i + 1) * R::BYTES]);
        }
        self.device.write_block(self.blocks[bi], &buf)
    }

    /// Read `count` records starting at record `start` into `out` (cleared
    /// first).  Costs one I/O per touched block:
    /// `⌈(start+count)/B⌉ − ⌊start/B⌋`.
    pub fn read_range(&self, start: u64, count: usize, out: &mut Vec<R>) -> Result<()> {
        assert!(start + count as u64 <= self.len, "range out of bounds");
        out.clear();
        if count == 0 {
            return Ok(());
        }
        out.reserve(count);
        let per = self.per_block() as u64;
        let first_block = (start / per) as usize;
        let last_block = ((start + count as u64 - 1) / per) as usize;
        let mut buf = self.block_buf();
        for bi in first_block..=last_block {
            self.device.read_block(self.blocks[bi], &mut buf)?;
            let block_start = bi as u64 * per;
            let lo = start.max(block_start) - block_start;
            let hi = (start + count as u64).min(block_start + per) - block_start;
            for i in lo..hi {
                let i = i as usize;
                out.push(R::read_from(&buf[i * R::BYTES..(i + 1) * R::BYTES]));
            }
        }
        Ok(())
    }

    /// Overwrite `records.len()` records starting at `start`.  Fully covered
    /// blocks are written with one I/O; partially covered edge blocks incur a
    /// read-modify-write (one extra read each).
    pub fn write_range(&self, start: u64, records: &[R]) -> Result<()> {
        assert!(
            start + records.len() as u64 <= self.len,
            "range out of bounds"
        );
        if records.is_empty() {
            return Ok(());
        }
        let per = self.per_block() as u64;
        let end = start + records.len() as u64;
        let first_block = (start / per) as usize;
        let last_block = ((end - 1) / per) as usize;
        let mut buf = self.block_buf();
        for bi in first_block..=last_block {
            let block_start = bi as u64 * per;
            let block_records = self.records_in_block(bi) as u64;
            let lo = start.max(block_start);
            let hi = end.min(block_start + per);
            let covers_whole_block = lo == block_start && hi - block_start >= block_records;
            if !covers_whole_block {
                self.device.read_block(self.blocks[bi], &mut buf)?;
            }
            for i in lo..hi {
                let r = &records[(i - start) as usize];
                let off = (i - block_start) as usize;
                r.write_to(&mut buf[off * R::BYTES..(off + 1) * R::BYTES]);
            }
            self.device.write_block(self.blocks[bi], &buf)?;
        }
        Ok(())
    }

    /// Sequential reader from the first record.
    pub fn reader(&self) -> ExtVecReader<'_, R> {
        ExtVecReader::new(self, 0)
    }

    /// Sequential reader starting at record `start`.
    pub fn reader_at(&self, start: u64) -> ExtVecReader<'_, R> {
        ExtVecReader::new(self, start)
    }

    /// Sequential reader that keeps up to `depth` blocks of read-ahead in
    /// flight, charged against `budget` with
    /// [`try_charge`](MemBudget::try_charge) (the depth degrades — possibly
    /// to 0, i.e. a plain reader — if the budget is short).  The reads issued
    /// are exactly those of [`reader`](Self::reader), merely submitted early.
    pub fn reader_prefetch(&self, depth: usize, budget: &Arc<MemBudget>) -> ExtVecReader<'_, R> {
        ExtVecReader::with_prefetch(self, 0, depth, budget)
    }

    /// Prefetching reader starting at record `start`; see
    /// [`reader_prefetch`](Self::reader_prefetch).
    pub fn reader_at_prefetch(
        &self,
        start: u64,
        depth: usize,
        budget: &Arc<MemBudget>,
    ) -> ExtVecReader<'_, R> {
        ExtVecReader::with_prefetch(self, start, depth, budget)
    }

    /// Externally managed prefetching reader: it never submits read-ahead on
    /// its own — a forecaster calls
    /// [`prefetch_one`](ExtVecReader::prefetch_one) to put up to `cap`
    /// blocks in flight, ordered across streams by
    /// [`next_fetch_head`](ExtVecReader::next_fetch_head).  The buffer pool
    /// backing `cap` is the *caller's* charge (shared across readers), so no
    /// budget is taken here.  The reads issued are still exactly those of
    /// [`reader`](Self::reader), merely submitted early and in
    /// forecaster-chosen order.
    pub fn reader_forecast(&self, start: u64, cap: usize) -> ExtVecReader<'_, R> {
        ExtVecReader::with_forecast(self, start, cap)
    }

    /// Load the whole array into memory.  **Test/verification helper** — it
    /// deliberately ignores the memory budget.
    pub fn to_vec(&self) -> Result<Vec<R>> {
        let mut out = Vec::with_capacity(self.len as usize);
        let mut block = Vec::new();
        for bi in 0..self.num_blocks() {
            self.read_block_into(bi, &mut block)?;
            out.append(&mut block);
        }
        Ok(out)
    }

    /// Release all backing blocks.
    pub fn free(self) -> Result<()> {
        for id in &self.blocks {
            self.device.free(*id)?;
        }
        Ok(())
    }

    /// Serialize the array's *metadata* — length, block-id table, and
    /// forecast heads — into a self-describing byte string.  Costs no I/O:
    /// the record data stays on the device.  Pairs with
    /// [`from_manifest`](Self::from_manifest) to reattach the array after a
    /// crash; layers store these bytes in a journal checkpoint manifest
    /// (see `pdm::Journal::set_manifest`).
    pub fn manifest_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.blocks.len() * 8 + self.heads.len() * R::BYTES);
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&(self.blocks.len() as u64).to_le_bytes());
        for id in &self.blocks {
            out.extend_from_slice(&id.to_le_bytes());
        }
        out.extend_from_slice(&(self.heads.len() as u64).to_le_bytes());
        let mut rec = vec![0u8; R::BYTES];
        for h in &self.heads {
            h.write_to(&mut rec);
            out.extend_from_slice(&rec);
        }
        out
    }

    /// Reattach an array on `device` from metadata produced by
    /// [`manifest_bytes`](Self::manifest_bytes).  Costs no I/O.  Returns an
    /// error if the bytes are malformed (truncated or with inconsistent
    /// counts) rather than panicking, so recovery can reject a corrupt
    /// manifest.
    pub fn from_manifest(device: SharedDevice, bytes: &[u8]) -> Result<Self> {
        fn corrupt() -> pdm::PdmError {
            pdm::PdmError::Io(std::io::Error::other("malformed ExtVec manifest"))
        }
        fn take_u64(bytes: &[u8], pos: &mut usize) -> Result<u64> {
            let end = pos.checked_add(8).ok_or_else(corrupt)?;
            let chunk = bytes.get(*pos..end).ok_or_else(corrupt)?;
            *pos = end;
            Ok(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")))
        }
        let mut pos = 0;
        let len = take_u64(bytes, &mut pos)?;
        let n_blocks = take_u64(bytes, &mut pos)? as usize;
        let per = Self::per_block_on(&device) as u64;
        if n_blocks as u64 != len.div_ceil(per) && !(len == 0 && n_blocks == 0) {
            return Err(corrupt());
        }
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            blocks.push(take_u64(bytes, &mut pos)?);
        }
        let n_heads = take_u64(bytes, &mut pos)? as usize;
        if n_heads != 0 && n_heads != n_blocks {
            return Err(corrupt());
        }
        let mut heads = Vec::with_capacity(n_heads);
        for _ in 0..n_heads {
            let end = pos.checked_add(R::BYTES).ok_or_else(corrupt)?;
            let chunk = bytes.get(pos..end).ok_or_else(corrupt)?;
            heads.push(R::read_from(chunk));
            pos = end;
        }
        if pos != bytes.len() {
            return Err(corrupt());
        }
        Ok(ExtVec {
            device,
            blocks,
            len,
            heads,
            _marker: PhantomData,
        })
    }

    fn block_buf(&self) -> Box<[u8]> {
        vec![0u8; self.device.block_size()].into_boxed_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EmConfig;

    fn dev() -> SharedDevice {
        EmConfig::new(64, 4).ram_disk() // 8 u64s per block
    }

    #[test]
    fn from_slice_round_trips() {
        let data: Vec<u64> = (0..100).collect();
        let v = ExtVec::from_slice(dev(), &data).unwrap();
        assert_eq!(v.len(), 100);
        assert_eq!(v.num_blocks(), 13);
        assert_eq!(v.to_vec().unwrap(), data);
    }

    #[test]
    fn get_and_set() {
        let data: Vec<u64> = (0..20).collect();
        let v = ExtVec::from_slice(dev(), &data).unwrap();
        assert_eq!(v.get(0).unwrap(), 0);
        assert_eq!(v.get(19).unwrap(), 19);
        v.set(7, &777).unwrap();
        assert_eq!(v.get(7).unwrap(), 777);
        assert_eq!(v.get(6).unwrap(), 6, "neighbours untouched");
        assert_eq!(v.get(8).unwrap(), 8);
    }

    #[test]
    fn get_costs_one_io_set_costs_two() {
        let device = dev();
        let v = ExtVec::from_slice(device.clone(), &(0u64..64).collect::<Vec<_>>()).unwrap();
        let before = device.stats().snapshot();
        v.get(33).unwrap();
        let after_get = device.stats().snapshot();
        assert_eq!(after_get.since(&before).total(), 1);
        v.set(33, &1).unwrap();
        let after_set = device.stats().snapshot();
        assert_eq!(after_set.since(&after_get).total(), 2);
    }

    #[test]
    fn partial_last_block() {
        let v = ExtVec::from_slice(dev(), &(0u64..10).collect::<Vec<_>>()).unwrap();
        assert_eq!(v.records_in_block(0), 8);
        assert_eq!(v.records_in_block(1), 2);
        let mut out = Vec::new();
        v.read_block_into(1, &mut out).unwrap();
        assert_eq!(out, vec![8, 9]);
    }

    #[test]
    fn write_block_replaces_contents() {
        let v = ExtVec::from_slice(dev(), &(0u64..16).collect::<Vec<_>>()).unwrap();
        v.write_block(1, &[90, 91, 92, 93, 94, 95, 96, 97]).unwrap();
        assert_eq!(v.to_vec().unwrap()[8..], [90, 91, 92, 93, 94, 95, 96, 97]);
    }

    #[test]
    #[should_panic(expected = "wrong record count")]
    fn write_block_wrong_size_panics() {
        let v = ExtVec::from_slice(dev(), &(0u64..16).collect::<Vec<_>>()).unwrap();
        v.write_block(0, &[1, 2, 3]).unwrap();
    }

    #[test]
    fn with_len_is_zeroed_and_costs_no_io() {
        let device = dev();
        let before = device.stats().snapshot();
        let v: ExtVec<u64> = ExtVec::with_len(device.clone(), 30).unwrap();
        assert_eq!(device.stats().snapshot().since(&before).total(), 0);
        assert_eq!(v.len(), 30);
        assert!(v.to_vec().unwrap().iter().all(|&x| x == 0));
    }

    #[test]
    fn free_releases_blocks() {
        let device = dev();
        let v = ExtVec::from_slice(device.clone(), &(0u64..64).collect::<Vec<_>>()).unwrap();
        assert_eq!(device.allocated_blocks(), 8);
        v.free().unwrap();
        assert_eq!(device.allocated_blocks(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = ExtVec::from_slice(dev(), &[1u64, 2, 3]).unwrap();
        let _ = v.get(3);
    }

    #[test]
    fn empty_vec() {
        let v: ExtVec<u64> = ExtVec::new(dev());
        assert!(v.is_empty());
        assert_eq!(v.num_blocks(), 0);
        assert_eq!(v.to_vec().unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn manifest_round_trips_without_io() {
        let device = dev();
        let v = ExtVec::from_slice(device.clone(), &(0u64..20).collect::<Vec<_>>()).unwrap();
        let before = device.stats().snapshot();
        let bytes = v.manifest_bytes();
        let r = ExtVec::<u64>::from_manifest(device.clone(), &bytes).unwrap();
        assert_eq!(device.stats().snapshot().since(&before).total(), 0);
        assert_eq!(r.len(), 20);
        assert!(r.has_block_heads());
        assert_eq!(r.block_head(2), Some(&16));
        assert_eq!(r.to_vec().unwrap(), (0..20).collect::<Vec<_>>());

        // Empty arrays and arrays without heads also round-trip.
        let e: ExtVec<u64> = ExtVec::new(device.clone());
        let e2 = ExtVec::<u64>::from_manifest(device.clone(), &e.manifest_bytes()).unwrap();
        assert!(e2.is_empty());
        let z: ExtVec<u64> = ExtVec::with_len(device.clone(), 10).unwrap();
        let z2 = ExtVec::<u64>::from_manifest(device.clone(), &z.manifest_bytes()).unwrap();
        assert_eq!(z2.len(), 10);
        assert!(!z2.has_block_heads());

        // Corruption is an error, not a panic.
        assert!(ExtVec::<u64>::from_manifest(device.clone(), &bytes[..bytes.len() - 1]).is_err());
        assert!(ExtVec::<u64>::from_manifest(device, &[1, 2, 3]).is_err());
    }
}

#[cfg(test)]
mod range_tests {
    use super::*;
    use crate::EmConfig;

    fn dev() -> SharedDevice {
        EmConfig::new(64, 4).ram_disk() // 8 u64s per block
    }

    #[test]
    fn read_range_contents_and_cost() {
        let device = dev();
        let v = ExtVec::from_slice(device.clone(), &(0u64..40).collect::<Vec<_>>()).unwrap();
        let mut out = Vec::new();
        let before = device.stats().snapshot();
        v.read_range(5, 10, &mut out).unwrap(); // spans blocks 0 and 1
        assert_eq!(out, (5..15).collect::<Vec<u64>>());
        assert_eq!(device.stats().snapshot().since(&before).reads(), 2);
        v.read_range(8, 8, &mut out).unwrap(); // exactly block 1
        assert_eq!(out, (8..16).collect::<Vec<u64>>());
        v.read_range(0, 0, &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn write_range_full_blocks_skip_read() {
        let device = dev();
        let v: ExtVec<u64> = ExtVec::with_len(device.clone(), 40).unwrap();
        let before = device.stats().snapshot();
        // records 8..24 = blocks 1 and 2 fully covered
        v.write_range(8, &(100u64..116).collect::<Vec<_>>())
            .unwrap();
        let d = device.stats().snapshot().since(&before);
        assert_eq!(d.writes(), 2);
        assert_eq!(d.reads(), 0, "fully covered blocks need no read");
        assert_eq!(
            v.to_vec().unwrap()[8..24],
            (100..116).collect::<Vec<u64>>()[..]
        );
    }

    #[test]
    fn write_range_partial_edges_rmw() {
        let device = dev();
        let v = ExtVec::from_slice(device.clone(), &(0u64..24).collect::<Vec<_>>()).unwrap();
        let before = device.stats().snapshot();
        v.write_range(5, &[50, 51, 52, 53, 54, 55]).unwrap(); // spans blocks 0,1 partially
        let d = device.stats().snapshot().since(&before);
        assert_eq!(d.reads(), 2, "both edge blocks RMW");
        assert_eq!(d.writes(), 2);
        let all = v.to_vec().unwrap();
        assert_eq!(all[4], 4);
        assert_eq!(all[5..11], [50, 51, 52, 53, 54, 55]);
        assert_eq!(all[11], 11);
    }

    #[test]
    fn write_range_partial_last_block_of_vec() {
        let device = dev();
        let v = ExtVec::from_slice(device.clone(), &(0u64..10).collect::<Vec<_>>()).unwrap();
        // block 1 holds records 8..10; covering both is "whole block"
        let before = device.stats().snapshot();
        v.write_range(8, &[80, 90]).unwrap();
        let d = device.stats().snapshot().since(&before);
        assert_eq!(d.reads(), 0);
        assert_eq!(v.to_vec().unwrap()[8..], [80, 90]);
    }

    #[test]
    #[should_panic(expected = "range out of bounds")]
    fn read_range_oob_panics() {
        let v = ExtVec::from_slice(dev(), &[1u64, 2, 3]).unwrap();
        let mut out = Vec::new();
        v.read_range(2, 2, &mut out).unwrap();
    }
}
