//! Closed-form I/O bounds from the survey.
//!
//! These are the formulas the experiment harness overlays on measured I/O
//! counts.  All take record-counted parameters (`N`, `M`, `B` in records) and
//! return the bound *without* its hidden constant, as an `f64` — experiments
//! report the measured/predicted ratio, which should be a small constant if
//! the implementation matches the theory.
//!
//! ```text
//! Scan(N)    = N/B                                      (one disk; /D for D disks)
//! Sort(N)    = (N/B) · log_{M/B}(N/B)
//! Search(N)  = log_B N
//! Output(Z)  = max(1, Z/B)
//! Permute(N) = min(N, Sort(N))
//! Transpose  = (N/B) · log_m min(M, p, q, N/M)          (p×q matrix, N = pq)
//! ```

/// `Scan(N) = ⌈N/B⌉` — touch every record once.
pub fn scan(n: u64, b: usize) -> f64 {
    (n as f64 / b as f64).ceil()
}

/// `Sort(N) = (N/B) · log_{M/B}(N/B)` — the sorting bound (Θ-form, no
/// constant).  Returns at least `N/B` (one pass) for inputs that fit in one
/// memory load.
pub fn sort(n: u64, m: usize, b: usize) -> f64 {
    let nb = n as f64 / b as f64;
    let mb = (m as f64 / b as f64).max(2.0);
    nb * (nb.ln() / mb.ln()).max(1.0)
}

/// `Search(N) = ⌈log_B N⌉` — one root-to-leaf B-tree path.
pub fn search(n: u64, b: usize) -> f64 {
    if n <= 1 {
        return 1.0;
    }
    ((n as f64).ln() / (b as f64).ln()).ceil().max(1.0)
}

/// `Output(Z) = max(1, ⌈Z/B⌉)` — report `Z` answers.
pub fn output(z: u64, b: usize) -> f64 {
    (z as f64 / b as f64).ceil().max(1.0)
}

/// `Permute(N) = min(N, Sort(N))` — the permutation bound; for realistic
/// `B` sorting wins, for tiny `B` moving records one at a time wins.
pub fn permute(n: u64, m: usize, b: usize) -> f64 {
    (n as f64).min(sort(n, m, b))
}

/// Matrix transpose bound for a `p × q` matrix (`N = p·q`):
/// `(N/B) · log_m min(M, p, q, N/M)`, with the log clamped to ≥ 1
/// (at least one pass).
pub fn transpose(p: u64, q: u64, m: usize, b: usize) -> f64 {
    let n = p * q;
    let nb = n as f64 / b as f64;
    let mb = (m as f64 / b as f64).max(2.0);
    let inner = (m as f64)
        .min(p as f64)
        .min(q as f64)
        .min((n as f64 / m as f64).max(2.0));
    nb * (inner.ln() / mb.ln()).max(1.0)
}

/// Number of passes an `k`-way merge sort performs over the data:
/// `1 (run formation) + ⌈log_k(runs)⌉` where `runs = ⌈N/M⌉`.
/// Useful as an exact overlay for the merge-sort experiments.
pub fn merge_passes(n: u64, m: usize, fan_in: usize) -> u32 {
    let runs = (n as f64 / m as f64).ceil().max(1.0);
    if runs <= 1.0 {
        return 1;
    }
    1 + (runs.ln() / (fan_in as f64).ln()).ceil() as u32
}

/// Exact predicted I/O count for a `k`-way merge sort that reads and writes
/// every block once per pass: `2 · ⌈N/B⌉ · passes`.
pub fn merge_sort_ios(n: u64, m: usize, b: usize, fan_in: usize) -> f64 {
    2.0 * scan(n, b) * merge_passes(n, m, fan_in) as f64
}

/// Initial runs formed by load–sort–store run formation: `⌈N/M⌉` runs of
/// exactly `M` records each (the last possibly partial).  Zero for an empty
/// input.
pub fn initial_runs(n: u64, m: usize) -> u64 {
    (n as f64 / m as f64).ceil() as u64
}

/// The load–sort–store run queue, as record counts: `⌈N/M⌉ − 1` full runs
/// plus the remainder.
fn run_queue(n: u64, m: usize) -> std::collections::VecDeque<u64> {
    let m = m as u64;
    let mut q = std::collections::VecDeque::new();
    let mut left = n;
    while left > 0 {
        let take = left.min(m);
        q.push_back(take);
        left -= take;
    }
    q
}

fn blocks(records: u64, b: usize) -> u64 {
    records.div_ceil(b as u64)
}

/// Exact transfer count of a *materialized* `k`-way external merge sort
/// (`merge_sort_by`): read the input, write `⌈N/M⌉` runs, then merge
/// front-to-back in groups of `k` until one run remains — the final merge's
/// output write included.  A single initial run is returned as the output
/// directly (no merge).  Exact for load–sort–store run formation, including
/// partial merge passes and per-run block rounding.
pub fn merge_sort_exact_ios(n: u64, m: usize, b: usize, fan_in: usize) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut q = run_queue(n, m);
    let mut t = scan(n, b) as u64; // read input during run formation
    t += q.iter().map(|&r| blocks(r, b)).sum::<u64>(); // write runs
    t += simulate_full_merge(&mut q, fan_in, b, |len| len > 1);
    t
}

/// Exact transfer count of a *fused* streaming merge sort
/// (`merge_sort_streaming` / a drained `SortingWriter`, input read
/// included): read the input, write the runs, merge front-to-back in groups
/// of `k` while more than `k` runs remain, then *read* the final `≤ k` runs
/// once as the consumer drains the fused last merge — no output write.
/// The fused sort therefore costs exactly `⌈N/B⌉` less than
/// [`merge_sort_exact_ios`] whenever at least one merge happens, and
/// `⌈N/B⌉` *more* when a single run forms (the materialized sort returns
/// the run directly; the stream must read it back).
pub fn merge_sort_streamed_ios(n: u64, m: usize, b: usize, fan_in: usize) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut q = run_queue(n, m);
    let mut t = scan(n, b) as u64;
    t += q.iter().map(|&r| blocks(r, b)).sum::<u64>();
    t += simulate_full_merge(&mut q, fan_in, b, |len| len > fan_in.max(2));
    t += q.iter().map(|&r| blocks(r, b)).sum::<u64>(); // final fused read
    t
}

/// Recursion-depth backstop shared by the hash partitioner
/// (`emhash::partition`) and the exact replays below.  A partition still
/// over `M` after this many levels falls back to the sort path.
pub const HASH_MAX_LEVELS: usize = 32;

/// Exact transfer count of `emhash::partition::partition_to_fit`: read the
/// input, spill every record to its level-0 bucket, and recurse — one read
/// plus one write per level a record passes through — until every leaf
/// fits in `M`, stops shrinking (equal-hash skew), or hits
/// [`HASH_MAX_LEVELS`].  Leaves are returned unread (their consumption is
/// the consumer's cost).  `hashes` are the records' level-0 key hashes
/// ([`hash_bytes`](pdm::hash::hash_bytes) of the key bytes) in arrival
/// order; the replay reproduces the recursion tree exactly because deeper
/// levels *remix* those hashes ([`level_bucket`](pdm::hash::level_bucket))
/// rather than rehashing the keys.
pub fn hash_partition_exact_ios(hashes: &[u64], m: usize, b: usize, fan_out: usize) -> u64 {
    let n = hashes.len() as u64;
    if n == 0 {
        return 0;
    }
    if n as usize <= m {
        // Degenerate copy: the input already fits, but the caller is handed
        // an owned leaf — one read plus one write of the whole input.
        return 2 * blocks(n, b);
    }
    fn rec(hs: &[u64], level: usize, m: usize, b: usize, fan_out: usize) -> u64 {
        let fed = hs.len() as u64;
        let mut t = blocks(fed, b); // read the partition
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); fan_out];
        for &h in hs {
            buckets[pdm::hash::level_bucket(h, level, fan_out)].push(h);
        }
        for child in &buckets {
            let len = child.len() as u64;
            if len == 0 {
                continue;
            }
            t += blocks(len, b); // spill write
            if len as usize <= m || len == fed || level + 1 >= HASH_MAX_LEVELS {
                continue; // leaf: resident, skewed, or depth backstop
            }
            t += rec(child, level + 1, m, b, fan_out);
        }
        t
    }
    rec(hashes, 0, m, b, fan_out)
}

/// Exact transfer count of `emrel`'s hybrid hash aggregation
/// (`HashGroupByExec` / `HashDistinctExec`), *excluding* the child stream's
/// own cost and the sink's output write — the same boundary convention as
/// [`merge_sort_streamed_ios`]'s callers.
///
/// Replayed schedule, identical to the executor:
/// * an in-memory table absorbs the first `M − (F+1)·B` *distinct* keys in
///   arrival order (records with resident keys fold for free); every other
///   record spills to its level-0 bucket (one write per block);
/// * a partition of ≤ `M − B` records is read once and aggregated resident;
/// * a larger partition is re-passed at the next level (read + re-spill),
///   with a fresh table absorbing again;
/// * a partition that did not shrink (equal keys — the skew tape) or that
///   is still oversized at [`HASH_MAX_LEVELS`] is sorted instead:
///   [`merge_sort_exact_ios`] (its scan term *is* the partition read) plus
///   one read of the sorted result for the streaming group pass.
///
/// `hashes` must be the level-0 key hashes of the operator's input records
/// in arrival order (residency is first-come); `fan_in` is the sort
/// fallback's merge fan-in.
pub fn hash_group_exact_ios(
    hashes: &[u64],
    m: usize,
    b: usize,
    fan_out: usize,
    fan_in: usize,
) -> u64 {
    let n = hashes.len() as u64;
    if n == 0 {
        return 0;
    }
    let (t, buckets) = hash_group_pass(hashes, 0, m, b, fan_out);
    let mut t = t;
    for child in &buckets {
        if child.is_empty() {
            continue;
        }
        let skewed = child.len() as u64 == n;
        t += hash_group_rec(child, 1, skewed, m, b, fan_out, fan_in);
    }
    t
}

/// One hybrid absorb-and-spill pass: returns (spill-write transfers,
/// per-bucket spilled hashes).  `level` selects the bucket salt.
fn hash_group_pass(
    hashes: &[u64],
    level: usize,
    m: usize,
    b: usize,
    fan_out: usize,
) -> (u64, Vec<Vec<u64>>) {
    let cap = m.saturating_sub((fan_out + 1) * b);
    let mut table = std::collections::HashSet::new();
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); fan_out];
    for &h in hashes {
        if table.contains(&h) {
            continue; // resident key: folds in memory
        }
        if table.len() < cap {
            table.insert(h);
        } else {
            buckets[pdm::hash::level_bucket(h, level, fan_out)].push(h);
        }
    }
    let t = buckets
        .iter()
        .filter(|c| !c.is_empty())
        .map(|c| blocks(c.len() as u64, b))
        .sum();
    (t, buckets)
}

/// Consume one spilled aggregation partition starting at `level`; `skewed`
/// records that the pass producing it made no progress (the no-shrink
/// test), which forces the sort fallback unless the partition is resident.
fn hash_group_rec(
    hs: &[u64],
    level: usize,
    skewed: bool,
    m: usize,
    b: usize,
    fan_out: usize,
    fan_in: usize,
) -> u64 {
    let len = hs.len() as u64;
    if len as usize <= m.saturating_sub(b) {
        return blocks(len, b); // read once, aggregate resident
    }
    if skewed || level >= HASH_MAX_LEVELS {
        return group_fallback(len, m, b, fan_in);
    }
    let mut t = blocks(len, b); // read for the re-pass
    let (spill, buckets) = hash_group_pass(hs, level, m, b, fan_out);
    t += spill;
    for child in &buckets {
        if child.is_empty() {
            continue;
        }
        let child_skewed = child.len() as u64 == len;
        t += hash_group_rec(child, level + 1, child_skewed, m, b, fan_out, fan_in);
    }
    t
}

/// Sort fallback for one aggregation partition: materialized merge sort
/// (the sort's scan term is the partition read) plus one read of the
/// sorted array for the streaming group pass.
fn group_fallback(len: u64, m: usize, b: usize, fan_in: usize) -> u64 {
    merge_sort_exact_ios(len, m, b, fan_in) + blocks(len, b)
}

/// Exact transfer count of `emrel`'s Grace / hybrid hash join
/// (`HashJoinExec`), excluding the children's stream costs and the sink
/// write.  `b_build` / `b_probe` are records-per-block of the two inputs
/// (their record sizes may differ), `fan_in_*` the fallback sorts' fan-ins.
///
/// Replayed schedule, identical to the executor:
/// * level 0 partitions the build side `F` ways; with `hybrid`, bucket 0
///   is kept resident (never spilled) — if it exceeds the residency budget
///   `M − (F+1)·(B_build + B_probe)` the regime is infeasible and the cost
///   is **∞** (the planner then never picks it; the executor panics on the
///   model violation);
/// * the probe side partitions with the same salts; probe records whose
///   build bucket is empty are dropped unspilled, and hybrid bucket-0
///   probes match against the resident table in-stream;
/// * a pair whose build partition is ≤ `M − B_build − B_probe` records is
///   consumed directly: read the build into a table, stream the probe;
/// * an oversized pair is re-partitioned pairwise at the next level; a
///   build partition that did not shrink (equal keys — no hash can split
///   it, and no sort-merge could buffer the over-`M` key group either), or
///   one still oversized at [`HASH_MAX_LEVELS`], falls back to a
///   block-nested-loop join of the pair: the build side is read once in
///   `M − B_build − B_probe`-record chunks, the probe side re-scanned once
///   per chunk.  With a single chunk this is exactly the resident-pair
///   cost, so the fallback is never priced better than the happy path.
#[allow(clippy::too_many_arguments)]
pub fn hash_join_exact_ios(
    build_hashes: &[u64],
    probe_hashes: &[u64],
    m: usize,
    b_build: usize,
    b_probe: usize,
    fan_out: usize,
    hybrid: bool,
) -> f64 {
    let bn = build_hashes.len() as u64;
    let mut bbuckets: Vec<Vec<u64>> = vec![Vec::new(); fan_out];
    for &h in build_hashes {
        bbuckets[pdm::hash::level_bucket(h, 0, fan_out)].push(h);
    }
    if hybrid {
        let resident = m.saturating_sub((fan_out + 1) * (b_build + b_probe));
        if bbuckets[0].len() > resident {
            return f64::INFINITY;
        }
    }
    let mut pbuckets: Vec<Vec<u64>> = vec![Vec::new(); fan_out];
    for &h in probe_hashes {
        let i = pdm::hash::level_bucket(h, 0, fan_out);
        if !bbuckets[i].is_empty() {
            pbuckets[i].push(h); // build-empty probes are dropped unspilled
        }
    }
    let mut t = 0u64;
    let spill_from = usize::from(hybrid); // hybrid keeps pair 0 in memory
    for i in spill_from..fan_out {
        if !bbuckets[i].is_empty() {
            t += blocks(bbuckets[i].len() as u64, b_build);
        }
        if !pbuckets[i].is_empty() {
            t += blocks(pbuckets[i].len() as u64, b_probe);
        }
        t += hash_join_pair(
            &bbuckets[i],
            &pbuckets[i],
            bn,
            1,
            m,
            b_build,
            b_probe,
            fan_out,
        );
    }
    t as f64
}

/// Consume one (build, probe) partition pair starting at `level`; `fed` is
/// the build-side record count of the pass that produced the pair (the
/// no-shrink skew test).
#[allow(clippy::too_many_arguments)]
fn hash_join_pair(
    bh: &[u64],
    ph: &[u64],
    fed: u64,
    level: usize,
    m: usize,
    b_build: usize,
    b_probe: usize,
    fan_out: usize,
) -> u64 {
    if bh.is_empty() || ph.is_empty() {
        return 0; // no matches possible: both sides freed unread
    }
    let (bn, pn) = (bh.len() as u64, ph.len() as u64);
    let chunk = m.saturating_sub(b_build + b_probe) as u64;
    if bn <= chunk {
        return blocks(bn, b_build) + blocks(pn, b_probe); // build table + probe stream
    }
    if bn == fed || level >= HASH_MAX_LEVELS {
        // Block-nested loop: build read once in chunks, probe per chunk.
        return blocks(bn, b_build) + bn.div_ceil(chunk.max(1)) * blocks(pn, b_probe);
    }
    let mut t = blocks(bn, b_build) + blocks(pn, b_probe); // read both for the re-pass
    let mut bkids: Vec<Vec<u64>> = vec![Vec::new(); fan_out];
    for &h in bh {
        bkids[pdm::hash::level_bucket(h, level, fan_out)].push(h);
    }
    let mut pkids: Vec<Vec<u64>> = vec![Vec::new(); fan_out];
    for &h in ph {
        let i = pdm::hash::level_bucket(h, level, fan_out);
        if !bkids[i].is_empty() {
            pkids[i].push(h);
        }
    }
    for i in 0..fan_out {
        if !bkids[i].is_empty() {
            t += blocks(bkids[i].len() as u64, b_build);
        }
        if !pkids[i].is_empty() {
            t += blocks(pkids[i].len() as u64, b_probe);
        }
        t += hash_join_pair(
            &bkids[i],
            &pkids[i],
            bn,
            level + 1,
            m,
            b_build,
            b_probe,
            fan_out,
        );
    }
    t
}

/// Merge `queue` front-to-back in groups of `min(k, len)` while
/// `more(len)`, counting one read per input block and one write per output
/// block.
fn simulate_full_merge(
    queue: &mut std::collections::VecDeque<u64>,
    fan_in: usize,
    b: usize,
    more: impl Fn(usize) -> bool,
) -> u64 {
    let k = fan_in.max(2);
    let mut transfers = 0u64;
    while more(queue.len()) {
        let take = k.min(queue.len());
        let inputs: Vec<u64> = queue.drain(..take).collect();
        transfers += inputs.iter().map(|&r| blocks(r, b)).sum::<u64>(); // reads
        let group: u64 = inputs.iter().sum();
        transfers += blocks(group, b); // output write
        queue.push_back(group);
    }
    transfers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_is_ceiling_division() {
        assert_eq!(scan(1000, 100), 10.0);
        assert_eq!(scan(1001, 100), 11.0);
        assert_eq!(scan(0, 100), 0.0);
    }

    #[test]
    fn sort_is_at_least_one_pass() {
        // N ≤ M: one memory load, bound degenerates to N/B.
        assert_eq!(sort(100, 1000, 10), 10.0);
    }

    #[test]
    fn sort_grows_linearithmically() {
        let m = 1 << 10;
        let b = 1 << 5;
        let s1 = sort(1 << 20, m, b);
        let s2 = sort(1 << 21, m, b);
        // doubling N slightly more than doubles Sort(N)
        assert!(s2 > 2.0 * s1);
        assert!(s2 < 2.5 * s1);
    }

    #[test]
    fn search_matches_logb() {
        assert_eq!(search(1, 100), 1.0);
        assert_eq!(search(100, 100), 1.0);
        assert_eq!(search(10_000, 100), 2.0);
        assert_eq!(search(10_001, 100), 3.0);
    }

    #[test]
    fn permute_crossover() {
        // Tiny B: naive (N I/Os) wins.
        assert_eq!(permute(1000, 8, 2), sort(1000, 8, 2).min(1000.0));
        // Realistic B: sorting wins by far.
        let p = permute(1 << 20, 1 << 14, 1 << 8);
        assert!(p < (1 << 20) as f64);
        assert_eq!(p, sort(1 << 20, 1 << 14, 1 << 8));
    }

    #[test]
    fn output_at_least_one() {
        assert_eq!(output(0, 100), 1.0);
        assert_eq!(output(250, 100), 3.0);
    }

    #[test]
    fn merge_passes_counts_run_formation() {
        // Fits in memory: a single pass.
        assert_eq!(merge_passes(100, 1000, 7), 1);
        // 10 runs, fan-in 10: run formation + 1 merge pass.
        assert_eq!(merge_passes(10_000, 1000, 10), 2);
        // 100 runs, fan-in 10: run formation + 2 merge passes.
        assert_eq!(merge_passes(100_000, 1000, 10), 3);
    }

    #[test]
    fn hash_group_one_pass_when_groups_fit() {
        // 100 distinct keys, table cap = 64 − (4+1)·4 = 44... make cap
        // large: m=512, b=8, F=4 → cap = 512 − 40 = 472 ≥ distinct keys →
        // everything absorbs, zero operator transfers.
        let hashes: Vec<u64> = (0..5000u64)
            .map(|i| pdm::hash::hash_bytes(&(i % 100).to_le_bytes()))
            .collect();
        assert_eq!(hash_group_exact_ios(&hashes, 512, 8, 4, 8), 0);
    }

    #[test]
    fn hash_group_skew_tape_costs_one_spill_plus_sort() {
        // cap = 0 (m = (F+1)·b): every record spills to one bucket, which
        // never shrinks → spill write + sort fallback.
        let (m, b, f, k) = (40usize, 8usize, 4usize, 4usize);
        let hashes = vec![pdm::hash::hash_bytes(&7u64.to_le_bytes()); 1000];
        let spill = blocks(1000, b);
        let expect = spill + group_fallback(1000, m, b, k);
        assert_eq!(hash_group_exact_ios(&hashes, m, b, f, k), expect);
    }

    #[test]
    fn hash_join_empty_sides() {
        // Empty build: every probe record is dropped unspilled.
        assert_eq!(
            hash_join_exact_ios(&[], &[1, 2, 3], 64, 8, 8, 4, false),
            0.0
        );
        // Empty probe: the build bucket was already spilled (one block),
        // then the pair is freed unread.
        assert_eq!(hash_join_exact_ios(&[1], &[], 64, 8, 8, 4, false), 1.0);
    }

    #[test]
    fn hash_join_hybrid_overflow_is_infinite() {
        // Everything in build bucket 0 at level 0, far over any residency.
        let h = (0..64u64)
            .map(|i| pdm::hash::hash_bytes(&i.to_le_bytes()))
            .find(|&h| pdm::hash::level_bucket(h, 0, 4) == 0)
            .unwrap();
        let build = vec![h; 500];
        let cost = hash_join_exact_ios(&build, &[h], 64, 8, 8, 4, true);
        assert!(cost.is_infinite());
    }

    #[test]
    fn transpose_bounds_sane() {
        // Square matrix far bigger than memory.
        let t = transpose(1 << 10, 1 << 10, 1 << 12, 1 << 6);
        assert!(t >= scan(1 << 20, 1 << 6));
        assert!(t <= sort(1 << 20, 1 << 12, 1 << 6) * 2.0);
    }
}
