//! Closed-form I/O bounds from the survey.
//!
//! These are the formulas the experiment harness overlays on measured I/O
//! counts.  All take record-counted parameters (`N`, `M`, `B` in records) and
//! return the bound *without* its hidden constant, as an `f64` — experiments
//! report the measured/predicted ratio, which should be a small constant if
//! the implementation matches the theory.
//!
//! ```text
//! Scan(N)    = N/B                                      (one disk; /D for D disks)
//! Sort(N)    = (N/B) · log_{M/B}(N/B)
//! Search(N)  = log_B N
//! Output(Z)  = max(1, Z/B)
//! Permute(N) = min(N, Sort(N))
//! Transpose  = (N/B) · log_m min(M, p, q, N/M)          (p×q matrix, N = pq)
//! ```

/// `Scan(N) = ⌈N/B⌉` — touch every record once.
pub fn scan(n: u64, b: usize) -> f64 {
    (n as f64 / b as f64).ceil()
}

/// `Sort(N) = (N/B) · log_{M/B}(N/B)` — the sorting bound (Θ-form, no
/// constant).  Returns at least `N/B` (one pass) for inputs that fit in one
/// memory load.
pub fn sort(n: u64, m: usize, b: usize) -> f64 {
    let nb = n as f64 / b as f64;
    let mb = (m as f64 / b as f64).max(2.0);
    nb * (nb.ln() / mb.ln()).max(1.0)
}

/// `Search(N) = ⌈log_B N⌉` — one root-to-leaf B-tree path.
pub fn search(n: u64, b: usize) -> f64 {
    if n <= 1 {
        return 1.0;
    }
    ((n as f64).ln() / (b as f64).ln()).ceil().max(1.0)
}

/// `Output(Z) = max(1, ⌈Z/B⌉)` — report `Z` answers.
pub fn output(z: u64, b: usize) -> f64 {
    (z as f64 / b as f64).ceil().max(1.0)
}

/// `Permute(N) = min(N, Sort(N))` — the permutation bound; for realistic
/// `B` sorting wins, for tiny `B` moving records one at a time wins.
pub fn permute(n: u64, m: usize, b: usize) -> f64 {
    (n as f64).min(sort(n, m, b))
}

/// Matrix transpose bound for a `p × q` matrix (`N = p·q`):
/// `(N/B) · log_m min(M, p, q, N/M)`, with the log clamped to ≥ 1
/// (at least one pass).
pub fn transpose(p: u64, q: u64, m: usize, b: usize) -> f64 {
    let n = p * q;
    let nb = n as f64 / b as f64;
    let mb = (m as f64 / b as f64).max(2.0);
    let inner = (m as f64)
        .min(p as f64)
        .min(q as f64)
        .min((n as f64 / m as f64).max(2.0));
    nb * (inner.ln() / mb.ln()).max(1.0)
}

/// Number of passes an `k`-way merge sort performs over the data:
/// `1 (run formation) + ⌈log_k(runs)⌉` where `runs = ⌈N/M⌉`.
/// Useful as an exact overlay for the merge-sort experiments.
pub fn merge_passes(n: u64, m: usize, fan_in: usize) -> u32 {
    let runs = (n as f64 / m as f64).ceil().max(1.0);
    if runs <= 1.0 {
        return 1;
    }
    1 + (runs.ln() / (fan_in as f64).ln()).ceil() as u32
}

/// Exact predicted I/O count for a `k`-way merge sort that reads and writes
/// every block once per pass: `2 · ⌈N/B⌉ · passes`.
pub fn merge_sort_ios(n: u64, m: usize, b: usize, fan_in: usize) -> f64 {
    2.0 * scan(n, b) * merge_passes(n, m, fan_in) as f64
}

/// Initial runs formed by load–sort–store run formation: `⌈N/M⌉` runs of
/// exactly `M` records each (the last possibly partial).  Zero for an empty
/// input.
pub fn initial_runs(n: u64, m: usize) -> u64 {
    (n as f64 / m as f64).ceil() as u64
}

/// The load–sort–store run queue, as record counts: `⌈N/M⌉ − 1` full runs
/// plus the remainder.
fn run_queue(n: u64, m: usize) -> std::collections::VecDeque<u64> {
    let m = m as u64;
    let mut q = std::collections::VecDeque::new();
    let mut left = n;
    while left > 0 {
        let take = left.min(m);
        q.push_back(take);
        left -= take;
    }
    q
}

fn blocks(records: u64, b: usize) -> u64 {
    records.div_ceil(b as u64)
}

/// Exact transfer count of a *materialized* `k`-way external merge sort
/// (`merge_sort_by`): read the input, write `⌈N/M⌉` runs, then merge
/// front-to-back in groups of `k` until one run remains — the final merge's
/// output write included.  A single initial run is returned as the output
/// directly (no merge).  Exact for load–sort–store run formation, including
/// partial merge passes and per-run block rounding.
pub fn merge_sort_exact_ios(n: u64, m: usize, b: usize, fan_in: usize) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut q = run_queue(n, m);
    let mut t = scan(n, b) as u64; // read input during run formation
    t += q.iter().map(|&r| blocks(r, b)).sum::<u64>(); // write runs
    t += simulate_full_merge(&mut q, fan_in, b, |len| len > 1);
    t
}

/// Exact transfer count of a *fused* streaming merge sort
/// (`merge_sort_streaming` / a drained `SortingWriter`, input read
/// included): read the input, write the runs, merge front-to-back in groups
/// of `k` while more than `k` runs remain, then *read* the final `≤ k` runs
/// once as the consumer drains the fused last merge — no output write.
/// The fused sort therefore costs exactly `⌈N/B⌉` less than
/// [`merge_sort_exact_ios`] whenever at least one merge happens, and
/// `⌈N/B⌉` *more* when a single run forms (the materialized sort returns
/// the run directly; the stream must read it back).
pub fn merge_sort_streamed_ios(n: u64, m: usize, b: usize, fan_in: usize) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut q = run_queue(n, m);
    let mut t = scan(n, b) as u64;
    t += q.iter().map(|&r| blocks(r, b)).sum::<u64>();
    t += simulate_full_merge(&mut q, fan_in, b, |len| len > fan_in.max(2));
    t += q.iter().map(|&r| blocks(r, b)).sum::<u64>(); // final fused read
    t
}

/// Merge `queue` front-to-back in groups of `min(k, len)` while
/// `more(len)`, counting one read per input block and one write per output
/// block.
fn simulate_full_merge(
    queue: &mut std::collections::VecDeque<u64>,
    fan_in: usize,
    b: usize,
    more: impl Fn(usize) -> bool,
) -> u64 {
    let k = fan_in.max(2);
    let mut transfers = 0u64;
    while more(queue.len()) {
        let take = k.min(queue.len());
        let inputs: Vec<u64> = queue.drain(..take).collect();
        transfers += inputs.iter().map(|&r| blocks(r, b)).sum::<u64>(); // reads
        let group: u64 = inputs.iter().sum();
        transfers += blocks(group, b); // output write
        queue.push_back(group);
    }
    transfers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_is_ceiling_division() {
        assert_eq!(scan(1000, 100), 10.0);
        assert_eq!(scan(1001, 100), 11.0);
        assert_eq!(scan(0, 100), 0.0);
    }

    #[test]
    fn sort_is_at_least_one_pass() {
        // N ≤ M: one memory load, bound degenerates to N/B.
        assert_eq!(sort(100, 1000, 10), 10.0);
    }

    #[test]
    fn sort_grows_linearithmically() {
        let m = 1 << 10;
        let b = 1 << 5;
        let s1 = sort(1 << 20, m, b);
        let s2 = sort(1 << 21, m, b);
        // doubling N slightly more than doubles Sort(N)
        assert!(s2 > 2.0 * s1);
        assert!(s2 < 2.5 * s1);
    }

    #[test]
    fn search_matches_logb() {
        assert_eq!(search(1, 100), 1.0);
        assert_eq!(search(100, 100), 1.0);
        assert_eq!(search(10_000, 100), 2.0);
        assert_eq!(search(10_001, 100), 3.0);
    }

    #[test]
    fn permute_crossover() {
        // Tiny B: naive (N I/Os) wins.
        assert_eq!(permute(1000, 8, 2), sort(1000, 8, 2).min(1000.0));
        // Realistic B: sorting wins by far.
        let p = permute(1 << 20, 1 << 14, 1 << 8);
        assert!(p < (1 << 20) as f64);
        assert_eq!(p, sort(1 << 20, 1 << 14, 1 << 8));
    }

    #[test]
    fn output_at_least_one() {
        assert_eq!(output(0, 100), 1.0);
        assert_eq!(output(250, 100), 3.0);
    }

    #[test]
    fn merge_passes_counts_run_formation() {
        // Fits in memory: a single pass.
        assert_eq!(merge_passes(100, 1000, 7), 1);
        // 10 runs, fan-in 10: run formation + 1 merge pass.
        assert_eq!(merge_passes(10_000, 1000, 10), 2);
        // 100 runs, fan-in 10: run formation + 2 merge passes.
        assert_eq!(merge_passes(100_000, 1000, 10), 3);
    }

    #[test]
    fn transpose_bounds_sane() {
        // Square matrix far bigger than memory.
        let t = transpose(1 << 10, 1 << 10, 1 << 12, 1 << 6);
        assert!(t >= scan(1 << 20, 1 << 6));
        assert!(t <= sort(1 << 20, 1 << 12, 1 << 6) * 2.0);
    }
}
