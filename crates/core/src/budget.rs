//! Explicit internal-memory accounting.
//!
//! The I/O model's results only hold if the algorithm really keeps at most
//! `M` records resident.  Algorithms in this workspace *charge* their
//! in-memory buffers against a [`MemBudget`]; exceeding the budget panics,
//! turning a silent model violation into a loud test failure.  (Online
//! structures running on a [`pdm::BufferPool`] get the same enforcement from
//! the pool's bounded frame count instead.)

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A budget of `capacity` records of internal memory.
#[derive(Debug)]
pub struct MemBudget {
    capacity: usize,
    used: AtomicUsize,
    high_water: AtomicUsize,
}

impl MemBudget {
    /// Create a budget of `capacity` records.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(MemBudget {
            capacity,
            used: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
        })
    }

    /// Total capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently charged.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Records still available.
    pub fn available(&self) -> usize {
        self.capacity - self.used()
    }

    /// Peak charged usage over the budget's lifetime.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Charge `records` against the budget; the charge is released when the
    /// returned guard drops.
    ///
    /// # Panics
    /// If the charge would exceed the capacity — that is a model violation
    /// by the calling algorithm.
    pub fn charge(self: &Arc<Self>, records: usize) -> BudgetGuard {
        let prev = self.used.fetch_add(records, Ordering::Relaxed);
        let now = prev + records;
        assert!(
            now <= self.capacity,
            "memory budget exceeded: {now} records charged, capacity {}",
            self.capacity
        );
        self.high_water.fetch_max(now, Ordering::Relaxed);
        BudgetGuard {
            budget: Arc::clone(self),
            records,
        }
    }

    /// Charge the largest multiple of `unit` records that fits, up to
    /// `max_units · unit`, or `None` if not even one unit fits.
    ///
    /// This is the degrading charge used for block-granular pipeline
    /// buffers: a prefetch pool that wants `k·depth` blocks shrinks to
    /// whatever whole number of blocks the budget has left rather than
    /// violating the model.
    pub fn try_charge_units(
        self: &Arc<Self>,
        max_units: usize,
        unit: usize,
    ) -> Option<BudgetGuard> {
        for units in (1..=max_units).rev() {
            if let Some(guard) = self.try_charge(units * unit) {
                return Some(guard);
            }
        }
        None
    }

    /// Charge `records` if capacity allows, or return `None` charging
    /// nothing.
    ///
    /// Opportunistic consumers use this — read-ahead and write-behind
    /// buffers shrink to whatever the budget has left (possibly zero) rather
    /// than violating the model.
    pub fn try_charge(self: &Arc<Self>, records: usize) -> Option<BudgetGuard> {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let now = cur.checked_add(records)?;
            if now > self.capacity {
                return None;
            }
            match self
                .used
                .compare_exchange_weak(cur, now, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.high_water.fetch_max(now, Ordering::Relaxed);
                    return Some(BudgetGuard {
                        budget: Arc::clone(self),
                        records,
                    });
                }
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Releases its charge on drop.
#[derive(Debug)]
pub struct BudgetGuard {
    budget: Arc<MemBudget>,
    records: usize,
}

impl BudgetGuard {
    /// Size of this charge, in records.
    pub fn records(&self) -> usize {
        self.records
    }
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        self.budget.used.fetch_sub(self.records, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_release() {
        let b = MemBudget::new(100);
        let g1 = b.charge(60);
        assert_eq!(b.used(), 60);
        assert_eq!(b.available(), 40);
        let g2 = b.charge(40);
        assert_eq!(b.available(), 0);
        drop(g1);
        assert_eq!(b.used(), 40);
        drop(g2);
        assert_eq!(b.used(), 0);
        assert_eq!(b.high_water(), 100);
    }

    #[test]
    #[should_panic(expected = "memory budget exceeded")]
    fn over_charge_panics() {
        let b = MemBudget::new(10);
        let _g = b.charge(5);
        let _h = b.charge(6);
    }

    #[test]
    fn zero_charge_is_free() {
        let b = MemBudget::new(1);
        let _g = b.charge(0);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn try_charge_units_degrades_to_largest_fit() {
        let b = MemBudget::new(25);
        let g = b.try_charge_units(5, 8).expect("three blocks fit");
        assert_eq!(g.records(), 24, "granted ⌊25/8⌋ = 3 units");
        assert!(b.try_charge_units(2, 8).is_none(), "no whole unit left");
        drop(g);
        assert_eq!(b.try_charge_units(1, 8).unwrap().records(), 8);
    }

    #[test]
    fn try_charge_succeeds_within_capacity_and_refuses_beyond() {
        let b = MemBudget::new(100);
        let g = b.try_charge(70).expect("fits");
        assert_eq!(g.records(), 70);
        assert_eq!(b.used(), 70);
        assert!(b.try_charge(31).is_none(), "over capacity refused");
        assert_eq!(b.used(), 70, "failed try_charge charges nothing");
        drop(g);
        assert!(b.try_charge(100).is_some());
    }
}
