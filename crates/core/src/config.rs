//! PDM machine configuration.

use std::sync::Arc;

use pdm::{RamDisk, SharedDevice};

use crate::record::Record;

/// The machine parameters of one Parallel Disk Model instance.
///
/// Sizes are stored in device units (bytes per block, blocks of memory) and
/// converted to record counts per record type on demand, because the survey's
/// parameters `M` and `B` are record counts that depend on the record size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmConfig {
    /// Size of one device block, in bytes.
    pub block_bytes: usize,
    /// Internal memory capacity, in blocks (`m = M/B`).
    pub mem_blocks: usize,
}

impl EmConfig {
    /// Create a configuration; requires at least 4 memory blocks (below
    /// that, merge fan-in degenerates and most algorithms cannot run).
    pub fn new(block_bytes: usize, mem_blocks: usize) -> Self {
        assert!(block_bytes > 0, "block size must be positive");
        assert!(mem_blocks >= 4, "need at least 4 blocks of memory");
        EmConfig {
            block_bytes,
            mem_blocks,
        }
    }

    /// Internal memory capacity in bytes.
    pub fn mem_bytes(&self) -> usize {
        self.block_bytes * self.mem_blocks
    }

    /// `B` for record type `R`: records per block.
    pub fn block_records<R: Record>(&self) -> usize {
        let b = self.block_bytes / R::BYTES;
        assert!(b >= 1, "record larger than a block");
        b
    }

    /// `M` for record type `R`: records of internal memory.
    pub fn mem_records<R: Record>(&self) -> usize {
        self.block_records::<R>() * self.mem_blocks
    }

    /// Create a fresh single [`RamDisk`] with this block size.
    pub fn ram_disk(&self) -> SharedDevice {
        RamDisk::new(self.block_bytes) as SharedDevice
    }

    /// Create a striped or independent RAM disk array with `d` member disks.
    pub fn ram_array(&self, d: usize, placement: pdm::Placement) -> Arc<pdm::DiskArray> {
        pdm::DiskArray::new_ram(d, self.block_bytes, placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_conversions() {
        let cfg = EmConfig::new(4096, 16);
        assert_eq!(cfg.block_records::<u64>(), 512);
        assert_eq!(cfg.mem_records::<u64>(), 512 * 16);
        assert_eq!(cfg.block_records::<(u64, u64)>(), 256);
        assert_eq!(cfg.mem_bytes(), 65536);
    }

    #[test]
    #[should_panic(expected = "at least 4 blocks")]
    fn tiny_memory_rejected() {
        EmConfig::new(4096, 2);
    }

    #[test]
    #[should_panic(expected = "record larger than a block")]
    fn record_must_fit_in_block() {
        let cfg = EmConfig::new(8, 4);
        cfg.block_records::<(u64, u64)>();
    }

    #[test]
    fn ram_disk_has_configured_block_size() {
        let cfg = EmConfig::new(128, 4);
        assert_eq!(cfg.ram_disk().block_size(), 128);
    }
}
