//! An append-and-rescan external buffer.
//!
//! Several algorithms (buffer-tree style structures, distribution sweeping's
//! active lists) need a container supporting two operations at `O(1/B)`
//! amortized I/Os each:
//!
//! * `push` — append a record (one in-memory tail block, spilled when full);
//! * `retain` — stream every record through a predicate, keeping only the
//!   matches (used for the "report or die" scan of sweep active lists).
//!
//! The amortized analysis of distribution sweeping hinges on `retain`:
//! every scanned record either produces output or is dropped forever.

use pdm::{BlockId, Result, SharedDevice};

use crate::record::Record;

/// Unordered external buffer with buffered appends and filtered rescans.
pub struct AppendBuffer<R: Record> {
    device: SharedDevice,
    /// Full spilled blocks.
    blocks: Vec<BlockId>,
    /// In-memory tail (< one block).
    tail: Vec<R>,
    per_block: usize,
    byte_buf: Box<[u8]>,
}

impl<R: Record> AppendBuffer<R> {
    /// Create an empty buffer on `device`.
    pub fn new(device: SharedDevice) -> Self {
        let per_block = (device.block_size() / R::BYTES).max(1);
        assert!(
            device.block_size() / R::BYTES >= 1,
            "record larger than block"
        );
        let byte_buf = vec![0u8; device.block_size()].into_boxed_slice();
        AppendBuffer {
            device,
            blocks: Vec::new(),
            tail: Vec::with_capacity(per_block),
            per_block,
            byte_buf,
        }
    }

    /// Number of records held.
    pub fn len(&self) -> u64 {
        (self.blocks.len() * self.per_block + self.tail.len()) as u64
    }

    /// True if no records are held.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty() && self.tail.is_empty()
    }

    /// Append a record; spills a full tail block (`O(1/B)` amortized).
    pub fn push(&mut self, r: R) -> Result<()> {
        self.tail.push(r);
        if self.tail.len() == self.per_block {
            for (i, rec) in self.tail.iter().enumerate() {
                rec.write_to(&mut self.byte_buf[i * R::BYTES..(i + 1) * R::BYTES]);
            }
            let id = self.device.allocate()?;
            self.device.write_block(id, &self.byte_buf)?;
            self.blocks.push(id);
            self.tail.clear();
        }
        Ok(())
    }

    /// Stream every record through `visit`; records for which it returns
    /// `false` are removed.  Costs one read of every old block plus one
    /// write per surviving block.
    pub fn retain<F: FnMut(&R) -> bool>(&mut self, mut visit: F) -> Result<()> {
        let old_blocks = std::mem::take(&mut self.blocks);
        let old_tail = std::mem::take(&mut self.tail);
        self.tail = Vec::with_capacity(self.per_block);
        for id in old_blocks {
            self.device.read_block(id, &mut self.byte_buf)?;
            // Decode before reusing byte_buf for writes.
            let records: Vec<R> = (0..self.per_block)
                .map(|i| R::read_from(&self.byte_buf[i * R::BYTES..(i + 1) * R::BYTES]))
                .collect();
            self.device.free(id)?;
            for r in records {
                if visit(&r) {
                    self.push(r)?;
                }
            }
        }
        for r in old_tail {
            if visit(&r) {
                self.push(r)?;
            }
        }
        Ok(())
    }

    /// Load everything into memory (test helper; ignores the budget).
    pub fn to_vec(&self) -> Result<Vec<R>> {
        let mut out = Vec::with_capacity(self.len() as usize);
        let mut buf = vec![0u8; self.byte_buf.len()].into_boxed_slice();
        for id in &self.blocks {
            self.device.read_block(*id, &mut buf)?;
            for i in 0..self.per_block {
                out.push(R::read_from(&buf[i * R::BYTES..(i + 1) * R::BYTES]));
            }
        }
        out.extend(self.tail.iter().cloned());
        Ok(out)
    }

    /// Release all blocks.
    pub fn clear(&mut self) -> Result<()> {
        for id in self.blocks.drain(..) {
            self.device.free(id)?;
        }
        self.tail.clear();
        Ok(())
    }
}

impl<R: Record> Drop for AppendBuffer<R> {
    fn drop(&mut self) {
        let _ = self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EmConfig;

    fn device() -> SharedDevice {
        EmConfig::new(64, 8).ram_disk() // 8 u64s per block
    }

    #[test]
    fn push_and_read_back() {
        let mut b = AppendBuffer::new(device());
        for i in 0..100u64 {
            b.push(i).unwrap();
        }
        assert_eq!(b.len(), 100);
        let mut v = b.to_vec().unwrap();
        v.sort_unstable();
        assert_eq!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn retain_filters_and_compacts() {
        let mut b = AppendBuffer::new(device());
        for i in 0..50u64 {
            b.push(i).unwrap();
        }
        let mut seen = 0;
        b.retain(|&x| {
            seen += 1;
            x % 2 == 0
        })
        .unwrap();
        assert_eq!(seen, 50);
        assert_eq!(b.len(), 25);
        let mut v = b.to_vec().unwrap();
        v.sort_unstable();
        assert_eq!(v, (0..50).step_by(2).collect::<Vec<_>>());
        // Buffer stays usable after retain.
        b.push(999).unwrap();
        assert_eq!(b.len(), 26);
    }

    #[test]
    fn retain_everything_dropped_frees_blocks() {
        let d = device();
        let mut b = AppendBuffer::new(d.clone());
        for i in 0..100u64 {
            b.push(i).unwrap();
        }
        assert!(d.allocated_blocks() > 0);
        b.retain(|_| false).unwrap();
        assert_eq!(b.len(), 0);
        assert_eq!(d.allocated_blocks(), 0);
    }

    #[test]
    fn push_io_is_amortized() {
        let d = device();
        let mut b = AppendBuffer::new(d.clone());
        let before = d.stats().snapshot();
        for i in 0..800u64 {
            b.push(i).unwrap();
        }
        let ios = d.stats().snapshot().since(&before).total();
        assert_eq!(ios, 100, "one write per full block");
    }

    #[test]
    fn drop_releases() {
        let d = device();
        {
            let mut b = AppendBuffer::new(d.clone());
            for i in 0..100u64 {
                b.push(i).unwrap();
            }
        }
        assert_eq!(d.allocated_blocks(), 0);
    }
}
