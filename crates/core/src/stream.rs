//! Buffered sequential streams over external arrays.
//!
//! A reader or writer holds exactly **one block** of records in memory, so a
//! `k`-way merge with one output stream holds `(k+1)·B` records — the
//! accounting that gives merge sort its `Θ(M/B)` fan-in.  Callers charge
//! these buffers against their [`MemBudget`](crate::MemBudget).
//!
//! Both streams optionally *overlap* their I/O with the caller's
//! computation: a reader built with
//! [`ExtVec::reader_prefetch`](crate::ExtVec::reader_prefetch) keeps up to
//! `k` read-ahead blocks in flight via
//! [`BlockDevice::submit_read`](pdm::BlockDevice::submit_read), and a writer
//! built with [`ExtVecWriter::with_write_behind`] retires full blocks
//! asynchronously instead of blocking on each flush.  The extra buffers are
//! charged against the [`MemBudget`](crate::MemBudget) with
//! [`try_charge`](crate::MemBudget::try_charge), so the depth silently
//! degrades (down to the synchronous depth 0) rather than exceeding `M`.
//! Overlap never changes *which* transfers happen — a prefetched block is
//! exactly the read the reader was about to issue — so block-transfer counts
//! are identical to the synchronous path.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use pdm::{BlockId, IoTicket, Result, SharedDevice};

use crate::budget::{BudgetGuard, MemBudget};
use crate::ext_vec::ExtVec;
use crate::record::Record;

/// Shared nanosecond accumulator for time spent blocked on device I/O.
///
/// Attach one to any number of readers/writers with their
/// `set_io_wait_sink`; every synchronous transfer and every
/// [`IoTicket::wait`] they perform adds its duration, letting a caller split
/// a phase's wall time into CPU work vs. I/O wait.
pub type IoWaitSink = Arc<AtomicU64>;

/// Run `f`, adding its duration to `sink` (when one is attached).
fn timed<T>(sink: &Option<IoWaitSink>, f: impl FnOnce() -> T) -> T {
    match sink {
        None => f(),
        Some(s) => {
            let t0 = Instant::now();
            let out = f();
            s.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            out
        }
    }
}

/// Encode `records` into `out`, zeroing the tail of a partial block so the
/// encoding is deterministic.
fn encode_block<R: Record>(records: &[R], out: &mut [u8]) {
    for (i, r) in records.iter().enumerate() {
        r.write_to(&mut out[i * R::BYTES..(i + 1) * R::BYTES]);
    }
    for b in out[records.len() * R::BYTES..].iter_mut() {
        *b = 0;
    }
}

/// Charge `depth` blocks of `per_block` records against `budget`, degrading
/// to the largest depth that fits (possibly 0).
fn charge_overlap(
    budget: &Arc<MemBudget>,
    depth: usize,
    per_block: usize,
) -> (usize, Option<BudgetGuard>) {
    for d in (1..=depth).rev() {
        if let Some(guard) = budget.try_charge(d * per_block) {
            return (d, Some(guard));
        }
    }
    (0, None)
}

/// Streaming writer: buffers one block, flushing when full.
///
/// Costs `⌈N/B⌉` write I/Os to emit `N` records, whether or not write-behind
/// is enabled.
///
/// **Metadata follows data.**  A block's id and head record are appended to
/// the array's metadata only once the device has confirmed the block written
/// (synchronously, or when its write-behind ticket completes) — never
/// before.  A failed flush therefore leaves the writer *consistent*: the
/// buffered records are retained, and the next [`push`](Self::push) or
/// [`finish`](Self::finish) retries the flush, rewriting the identical bytes
/// to the same already-allocated block (which is exactly the repair a torn
/// write needs).
pub struct ExtVecWriter<R: Record> {
    device: SharedDevice,
    blocks: Vec<BlockId>,
    buf: Vec<R>,
    byte_buf: Box<[u8]>,
    per_block: usize,
    len: u64,
    /// Maximum write-behind depth; 0 = synchronous flush.
    depth: usize,
    /// Full blocks handed to the device but not yet confirmed written, with
    /// the metadata (block id, head record) that is appended to
    /// `blocks`/`heads` — in FIFO order — only when each write completes.
    inflight: VecDeque<(BlockId, R, IoTicket)>,
    /// Completed write buffers ready for reuse.
    spare: Vec<Box<[u8]>>,
    /// Leading record of each flushed block (forecast metadata).
    heads: Vec<R>,
    /// Block allocated for a synchronous flush that failed; reused by the
    /// retry so the rewrite repairs the torn block in place.
    retry_block: Option<BlockId>,
    /// Accumulates time spent blocked on device transfers.
    wait_sink: Option<IoWaitSink>,
    /// Budget charge covering the write-behind buffers.
    _reserve: Option<BudgetGuard>,
}

impl<R: Record> ExtVecWriter<R> {
    /// Start writing a new external array on `device`.
    pub fn new(device: SharedDevice) -> Self {
        let per_block = ExtVec::<R>::per_block_on(&device);
        let byte_buf = vec![0u8; device.block_size()].into_boxed_slice();
        ExtVecWriter {
            device,
            blocks: Vec::new(),
            buf: Vec::with_capacity(per_block),
            byte_buf,
            per_block,
            len: 0,
            depth: 0,
            inflight: VecDeque::new(),
            spare: Vec::new(),
            heads: Vec::new(),
            retry_block: None,
            wait_sink: None,
            _reserve: None,
        }
    }

    /// Start a writer that retires up to `depth` full blocks asynchronously
    /// (write-behind), charging the extra buffers against `budget`.
    ///
    /// The depth degrades to whatever the budget has room for; with no room
    /// (or `depth == 0`) the writer behaves exactly like [`new`](Self::new).
    /// [`finish`](Self::finish) waits for every outstanding write, so the
    /// returned array is always fully durable.
    pub fn with_write_behind(device: SharedDevice, depth: usize, budget: &Arc<MemBudget>) -> Self {
        let mut w = Self::new(device);
        let (granted, reserve) = charge_overlap(budget, depth, w.per_block);
        w.depth = granted;
        w._reserve = reserve;
        w
    }

    /// Records written so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records per block (`B`).
    pub fn per_block(&self) -> usize {
        self.per_block
    }

    /// The write-behind depth actually granted by the budget.
    pub fn write_behind_depth(&self) -> usize {
        self.depth
    }

    /// Attach an [`IoWaitSink`]; subsequent blocking transfers (including
    /// the waits inside [`finish`](Self::finish)) add their duration to it.
    pub fn set_io_wait_sink(&mut self, sink: IoWaitSink) {
        self.wait_sink = Some(sink);
    }

    /// Append one record, flushing a full buffer to a fresh block.
    ///
    /// An `Err` means a block flush failed; the record itself was accepted
    /// and the buffered block is retained, so the next `push` (or
    /// [`finish`](Self::finish)) retries the flush in place.
    pub fn push(&mut self, r: R) -> Result<()> {
        if self.buf.len() >= self.per_block {
            // A previous flush failed; retry it before accepting more.
            self.flush_buf()?;
        }
        self.buf.push(r);
        self.len += 1;
        if self.buf.len() == self.per_block {
            self.flush_buf()?;
        }
        Ok(())
    }

    /// Finish, flushing any partial block and waiting out all in-flight
    /// writes, and return the completed array.
    pub fn finish(mut self) -> Result<ExtVec<R>> {
        if !self.buf.is_empty() {
            self.flush_buf()?;
        }
        while !self.inflight.is_empty() {
            self.retire_oldest()?;
        }
        let heads = std::mem::take(&mut self.heads);
        Ok(ExtVec::from_parts(
            self.device,
            std::mem::take(&mut self.blocks),
            self.len,
            heads,
        ))
    }

    /// Wait out the oldest in-flight write; only on success does its block
    /// enter the array's metadata.  Returns the retired transfer buffer.
    fn retire_oldest(&mut self) -> Result<Box<[u8]>> {
        let (id, head, ticket) = self
            .inflight
            .pop_front()
            .expect("retire_oldest on an empty pipeline");
        let buf = timed(&self.wait_sink, || ticket.wait())?;
        self.heads.push(head);
        self.blocks.push(id);
        Ok(buf)
    }

    fn flush_buf(&mut self) -> Result<()> {
        if self.depth == 0 {
            // Reuse the block from a failed attempt so the retry rewrites
            // (repairs) it rather than leaking a torn block.
            let id = match self.retry_block.take() {
                Some(id) => id,
                None => self.device.allocate()?,
            };
            encode_block(&self.buf, &mut self.byte_buf);
            if let Err(e) = timed(&self.wait_sink, || {
                self.device.write_block(id, &self.byte_buf)
            }) {
                self.retry_block = Some(id);
                return Err(e);
            }
            // Durable: only now does the block exist as far as the array's
            // metadata is concerned.
            self.heads.push(self.buf[0].clone());
            self.blocks.push(id);
            self.buf.clear();
            return Ok(());
        }
        // Write-behind: reuse a completed buffer, grow up to `depth`
        // in-flight blocks, or wait for the oldest write to retire its
        // buffer (recording its metadata as it completes).
        let mut out = if let Some(buf) = self.spare.pop() {
            buf
        } else if self.inflight.len() < self.depth {
            vec![0u8; self.device.block_size()].into_boxed_slice()
        } else {
            self.retire_oldest()?
        };
        let id = self.device.allocate()?;
        encode_block(&self.buf, &mut out);
        let head = self.buf[0].clone();
        self.inflight
            .push_back((id, head, self.device.submit_write(id, out)));
        self.buf.clear();
        Ok(())
    }
}

/// Streaming reader: buffers one block, refilling as it advances.
///
/// Costs `⌈N/B⌉` read I/Os to consume `N` records.  With read-ahead (see
/// [`ExtVec::reader_prefetch`](crate::ExtVec::reader_prefetch)) the same
/// reads are merely *submitted early*; a reader dropped before exhausting
/// the array records any unconsumed in-flight blocks as
/// [`prefetch_wasted`](pdm::IoSnapshot::prefetch_wasted).
pub struct ExtVecReader<'a, R: Record> {
    vec: &'a ExtVec<R>,
    buf: Vec<R>,
    pos: usize,
    consumed: u64,
    /// Maximum read-ahead depth; 0 = demand reads only.
    depth: usize,
    /// In-flight prefetches, in block order: (block index, ticket).
    pending: VecDeque<(usize, IoTicket)>,
    /// Next block index to prefetch.
    next_fetch: usize,
    /// Consumed prefetch buffers ready for reuse.
    spare: Vec<Box<[u8]>>,
    /// Externally managed (forecast) mode: the reader never tops itself up;
    /// a forecaster calls [`prefetch_one`](Self::prefetch_one) instead, and
    /// its buffers belong to the forecaster's shared pool.
    managed: bool,
    /// Accumulates time spent blocked on device transfers.
    wait_sink: Option<IoWaitSink>,
    /// Budget charge covering the read-ahead buffers.
    _reserve: Option<BudgetGuard>,
}

impl<'a, R: Record> ExtVecReader<'a, R> {
    pub(crate) fn new(vec: &'a ExtVec<R>, start: u64) -> Self {
        assert!(start <= vec.len(), "start beyond end");
        // The buffer starts empty; `fill` lazily loads the block that
        // `consumed` points into on first access.
        ExtVecReader {
            vec,
            buf: Vec::new(),
            pos: 0,
            consumed: start,
            depth: 0,
            pending: VecDeque::new(),
            next_fetch: 0,
            spare: Vec::new(),
            managed: false,
            wait_sink: None,
            _reserve: None,
        }
    }

    pub(crate) fn with_prefetch(
        vec: &'a ExtVec<R>,
        start: u64,
        depth: usize,
        budget: &Arc<MemBudget>,
    ) -> Self {
        let mut r = Self::new(vec, start);
        let (granted, reserve) = charge_overlap(budget, depth, vec.per_block());
        r.depth = granted;
        r._reserve = reserve;
        r.next_fetch = (start / vec.per_block() as u64) as usize;
        // Prime the pipeline immediately so the first `fill` already
        // overlaps with whatever the caller does before consuming.  A reader
        // with nothing left must not submit reads the synchronous path never
        // would (start == len can still point into the last partial block).
        if r.remaining() > 0 {
            r.top_up();
        }
        r
    }

    /// Externally managed (forecast-mode) reader: read-ahead capacity `cap`,
    /// but nothing is ever submitted except through
    /// [`prefetch_one`](Self::prefetch_one).  No budget is charged — the
    /// managing forecaster owns the shared pool charge.
    pub(crate) fn with_forecast(vec: &'a ExtVec<R>, start: u64, cap: usize) -> Self {
        let mut r = Self::new(vec, start);
        r.depth = cap;
        r.managed = true;
        r.next_fetch = (start / vec.per_block() as u64) as usize;
        r
    }

    /// Records not yet returned.
    pub fn remaining(&self) -> u64 {
        self.vec.len() - self.consumed
    }

    /// The read-ahead depth actually granted by the budget.
    pub fn prefetch_depth(&self) -> usize {
        self.depth
    }

    /// Attach an [`IoWaitSink`]; subsequent blocking transfers add their
    /// duration to it.
    pub fn set_io_wait_sink(&mut self, sink: IoWaitSink) {
        self.wait_sink = Some(sink);
    }

    /// Prefetches currently in flight (or complete but unconsumed).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// True if sequential blocks remain that have not been submitted yet.
    pub fn has_unfetched(&self) -> bool {
        self.next_fetch < self.vec.num_blocks()
    }

    /// Leading key of the next block this reader would prefetch — the
    /// forecast datum of Vitter's merge sort.  `None` once every block has
    /// been submitted, or if the array carries no block-head metadata.
    pub fn next_fetch_head(&self) -> Option<&R> {
        if self.next_fetch < self.vec.num_blocks() {
            self.vec.block_head(self.next_fetch)
        } else {
            None
        }
    }

    /// The I/O lane that would serve the next prefetched block, or `None`
    /// when every block has been submitted *or* the block spans all lanes
    /// (striped placement).  Pairs with [`next_fetch_head`] so a forecaster
    /// can cap outstanding reads per disk, not just per array.
    ///
    /// [`next_fetch_head`]: Self::next_fetch_head
    pub fn next_fetch_lane(&self) -> Option<usize> {
        if self.next_fetch < self.vec.num_blocks() {
            self.vec
                .device()
                .lane_of(self.vec.block_id(self.next_fetch))
        } else {
            None
        }
    }

    /// Add this reader's in-flight prefetches to a per-lane tally.  Striped
    /// blocks (no owning lane) count against lane 0; lane indexes are taken
    /// modulo `counts.len()` so a short tally slice cannot panic.
    pub fn add_in_flight_per_lane(&self, counts: &mut [usize]) {
        if counts.is_empty() {
            return;
        }
        for (bi, _) in &self.pending {
            let lane = self
                .vec
                .device()
                .lane_of(self.vec.block_id(*bi))
                .unwrap_or(0);
            counts[lane % counts.len()] += 1;
        }
    }

    /// (Forecast mode) Submit the single next sequential block, if capacity
    /// allows and unfetched blocks remain.  Returns whether a read was
    /// submitted.  Only meaningful on a reader built by
    /// [`ExtVec::reader_forecast`]; the issued read is one the plain reader
    /// would perform anyway, merely submitted early.
    pub fn prefetch_one(&mut self) -> bool {
        if !self.managed
            || self.depth == 0
            || self.pending.len() >= self.depth
            || self.next_fetch >= self.vec.num_blocks()
        {
            return false;
        }
        let buf = self
            .spare
            .pop()
            .unwrap_or_else(|| vec![0u8; self.vec.device().block_size()].into_boxed_slice());
        let id = self.vec.block_id(self.next_fetch);
        let device = self.vec.device();
        let ticket = device.submit_read(id, buf);
        let stats = device.stats();
        stats.record_prefetch();
        stats.record_forecast_issued(device.lane_of(id).unwrap_or(0));
        self.pending.push_back((self.next_fetch, ticket));
        self.next_fetch += 1;
        true
    }

    /// Look at the next record without consuming it.  Costs an I/O only at
    /// block boundaries.
    pub fn peek(&mut self) -> Result<Option<&R>> {
        if self.remaining() == 0 {
            return Ok(None);
        }
        if self.pos >= self.buf.len() {
            self.fill()?;
        }
        Ok(Some(&self.buf[self.pos]))
    }

    /// Consume and return the next record.
    pub fn try_next(&mut self) -> Result<Option<R>> {
        if self.remaining() == 0 {
            return Ok(None);
        }
        if self.pos >= self.buf.len() {
            self.fill()?;
        }
        let r = self.buf[self.pos].clone();
        self.pos += 1;
        self.consumed += 1;
        Ok(Some(r))
    }

    /// Keep `depth` sequential blocks in flight.  (No-op in forecast mode,
    /// where the managing forecaster decides when to submit.)
    fn top_up(&mut self) {
        if self.depth == 0 || self.managed {
            return;
        }
        let nblocks = self.vec.num_blocks();
        while self.pending.len() < self.depth && self.next_fetch < nblocks {
            let buf = self
                .spare
                .pop()
                .unwrap_or_else(|| vec![0u8; self.vec.device().block_size()].into_boxed_slice());
            let ticket = self
                .vec
                .device()
                .submit_read(self.vec.block_id(self.next_fetch), buf);
            self.vec.device().stats().record_prefetch();
            self.pending.push_back((self.next_fetch, ticket));
            self.next_fetch += 1;
        }
    }

    fn fill(&mut self) -> Result<()> {
        // `consumed` points at the record we need; load its block.
        let per = self.vec.per_block() as u64;
        let bi = (self.consumed / per) as usize;
        self.pos = (self.consumed % per) as usize;
        if self.depth > 0 {
            if matches!(self.pending.front(), Some(&(front_bi, _)) if front_bi == bi) {
                if let Some((_, ticket)) = self.pending.pop_front() {
                    let bytes = timed(&self.wait_sink, || ticket.wait())?;
                    self.vec.decode_block(bi, &bytes, &mut self.buf);
                    let stats = self.vec.device().stats();
                    stats.record_prefetch_hit();
                    if self.managed {
                        // The forecaster predicted this block and had it in
                        // flight when demanded.  Its buffer returns to the
                        // shared pool by being dropped (per-reader spare
                        // hoards would let total buffers exceed the pool).
                        let lane = self
                            .vec
                            .device()
                            .lane_of(self.vec.block_id(bi))
                            .unwrap_or(0);
                        stats.record_forecast_hit(lane);
                    } else {
                        self.spare.push(bytes);
                    }
                    self.top_up();
                    return Ok(());
                }
            }
            // The needed block is not at the head of the pipeline (possible
            // only for a freshly constructed reader whose budget granted
            // depth 0 mid-stream, for a forecast-mode reader the forecaster
            // has not fed yet, or after `pending` was drained at the
            // array's end): read on demand and realign the pipeline.
            self.next_fetch = self.next_fetch.max(bi + 1);
            timed(&self.wait_sink, || {
                self.vec.read_block_into(bi, &mut self.buf)
            })?;
            self.top_up();
            return Ok(());
        }
        timed(&self.wait_sink, || {
            self.vec.read_block_into(bi, &mut self.buf)
        })
    }
}

impl<R: Record> Drop for ExtVecReader<'_, R> {
    fn drop(&mut self) {
        // In-flight prefetches still execute (and count) on the device even
        // though nobody will consume them; make that observable.
        if !self.pending.is_empty() {
            self.vec
                .device()
                .stats()
                .record_prefetch_wasted(self.pending.len() as u64);
        }
    }
}

impl<R: Record> Iterator for ExtVecReader<'_, R> {
    type Item = R;

    /// Iterator convenience; panics on device error (which, for a correctly
    /// used simulator device, indicates a bug).  Use
    /// [`try_next`](Self::try_next) to handle errors.
    fn next(&mut self) -> Option<R> {
        self.try_next().expect("device read failed")
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = self.remaining() as usize;
        (r, Some(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EmConfig;

    fn dev() -> SharedDevice {
        EmConfig::new(64, 4).ram_disk() // 8 u64s per block
    }

    #[test]
    fn writer_reader_round_trip() {
        let device = dev();
        let mut w = ExtVecWriter::new(device.clone());
        for i in 0..1000u64 {
            w.push(i).unwrap();
        }
        let v = w.finish().unwrap();
        let collected: Vec<u64> = v.reader().collect();
        assert_eq!(collected, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_io_is_one_per_block() {
        let device = dev();
        let v = ExtVec::from_slice(device.clone(), &(0u64..80).collect::<Vec<_>>()).unwrap();
        let before = device.stats().snapshot();
        let _: Vec<u64> = v.reader().collect();
        let delta = device.stats().snapshot().since(&before);
        assert_eq!(delta.reads(), 10); // 80 records / 8 per block
        assert_eq!(delta.writes(), 0);
    }

    #[test]
    fn writer_io_is_one_per_block() {
        let device = dev();
        let before = device.stats().snapshot();
        let mut w = ExtVecWriter::new(device.clone());
        for i in 0..17u64 {
            w.push(i).unwrap();
        }
        let _v = w.finish().unwrap();
        let delta = device.stats().snapshot().since(&before);
        assert_eq!(delta.writes(), 3); // 2 full + 1 partial block
    }

    #[test]
    fn peek_does_not_consume() {
        let v = ExtVec::from_slice(dev(), &[10u64, 20, 30]).unwrap();
        let mut r = v.reader();
        assert_eq!(r.peek().unwrap(), Some(&10));
        assert_eq!(r.peek().unwrap(), Some(&10));
        assert_eq!(r.try_next().unwrap(), Some(10));
        assert_eq!(r.peek().unwrap(), Some(&20));
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    fn reader_at_offset() {
        let v = ExtVec::from_slice(dev(), &(0u64..30).collect::<Vec<_>>()).unwrap();
        let collected: Vec<u64> = v.reader_at(13).collect();
        assert_eq!(collected, (13..30).collect::<Vec<_>>());
        // Starting exactly at a block boundary.
        let collected: Vec<u64> = v.reader_at(16).collect();
        assert_eq!(collected, (16..30).collect::<Vec<_>>());
        // Starting at the end yields nothing.
        assert_eq!(v.reader_at(30).count(), 0);
    }

    #[test]
    fn empty_reader() {
        let v: ExtVec<u64> = ExtVec::new(dev());
        let mut r = v.reader();
        assert_eq!(r.peek().unwrap(), None);
        assert_eq!(r.try_next().unwrap(), None);
    }

    #[test]
    fn size_hint_exact() {
        let v = ExtVec::from_slice(dev(), &(0u64..5).collect::<Vec<_>>()).unwrap();
        let mut r = v.reader();
        assert_eq!(r.size_hint(), (5, Some(5)));
        r.next();
        assert_eq!(r.size_hint(), (4, Some(4)));
    }
}

#[cfg(test)]
mod overlap_tests {
    use super::*;
    use crate::EmConfig;

    fn dev() -> SharedDevice {
        EmConfig::new(64, 8).ram_disk() // 8 u64s per block
    }

    #[test]
    fn prefetching_reader_matches_plain_reader() {
        let device = dev();
        let v = ExtVec::from_slice(device.clone(), &(0u64..100).collect::<Vec<_>>()).unwrap();
        let budget = MemBudget::new(64);
        let before = device.stats().snapshot();
        let r = v.reader_prefetch(3, &budget);
        assert_eq!(r.prefetch_depth(), 3);
        let collected: Vec<u64> = r.collect();
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
        let delta = device.stats().snapshot().since(&before);
        assert_eq!(delta.reads(), 13, "prefetch must not change read counts");
        assert_eq!(delta.prefetched(), 13);
        assert_eq!(delta.prefetch_hits(), 13);
        assert_eq!(delta.prefetch_wasted(), 0);
        assert_eq!(budget.used(), 0, "reserve released when the reader drops");
    }

    #[test]
    fn prefetching_reader_at_offset() {
        let v = ExtVec::from_slice(dev(), &(0u64..50).collect::<Vec<_>>()).unwrap();
        let budget = MemBudget::new(64);
        let collected: Vec<u64> = v.reader_at_prefetch(19, 2, &budget).collect();
        assert_eq!(collected, (19..50).collect::<Vec<_>>());
    }

    #[test]
    fn prefetch_degrades_to_zero_without_budget() {
        let device = dev();
        let v = ExtVec::from_slice(device.clone(), &(0u64..40).collect::<Vec<_>>()).unwrap();
        let budget = MemBudget::new(4); // less than one block of u64s
        let before = device.stats().snapshot();
        let r = v.reader_prefetch(3, &budget);
        assert_eq!(r.prefetch_depth(), 0, "no budget, no read-ahead");
        let collected: Vec<u64> = r.collect();
        assert_eq!(collected, (0..40).collect::<Vec<_>>());
        let delta = device.stats().snapshot().since(&before);
        assert_eq!(delta.reads(), 5);
        assert_eq!(delta.prefetched(), 0);
    }

    #[test]
    fn dropped_reader_records_wasted_prefetches() {
        let device = dev();
        let v = ExtVec::from_slice(device.clone(), &(0u64..80).collect::<Vec<_>>()).unwrap();
        let budget = MemBudget::new(64);
        {
            let mut r = v.reader_prefetch(4, &budget);
            let _ = r.try_next().unwrap(); // consumes from block 0
        }
        let snap = device.stats().snapshot();
        assert_eq!(snap.prefetch_hits(), 1);
        // After the hit on block 0 the pipeline topped back up to depth 4
        // (blocks 1..=4), none of which were consumed.
        assert_eq!(snap.prefetched(), 5);
        assert_eq!(snap.prefetch_wasted(), 4);
    }

    #[test]
    fn write_behind_writer_matches_plain_writer() {
        let device = dev();
        let budget = MemBudget::new(64);
        let before = device.stats().snapshot();
        let mut w = ExtVecWriter::with_write_behind(device.clone(), 2, &budget);
        assert_eq!(w.write_behind_depth(), 2);
        for i in 0..100u64 {
            w.push(i).unwrap();
        }
        let v = w.finish().unwrap();
        let delta = device.stats().snapshot().since(&before);
        assert_eq!(
            delta.writes(),
            13,
            "write-behind must not change write counts"
        );
        assert_eq!(v.to_vec().unwrap(), (0..100).collect::<Vec<_>>());
        assert_eq!(
            budget.used(),
            0,
            "reserve released when the writer finishes"
        );
    }

    #[test]
    fn write_behind_degrades_to_zero_without_budget() {
        let device = dev();
        let budget = MemBudget::new(0);
        let mut w = ExtVecWriter::with_write_behind(device.clone(), 3, &budget);
        assert_eq!(w.write_behind_depth(), 0);
        for i in 0..20u64 {
            w.push(i).unwrap();
        }
        let v = w.finish().unwrap();
        assert_eq!(v.to_vec().unwrap(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn writer_records_block_heads() {
        let device = dev();
        let mut w = ExtVecWriter::new(device);
        for i in 0..20u64 {
            w.push(i).unwrap();
        }
        let v = w.finish().unwrap();
        assert!(v.has_block_heads());
        assert_eq!(v.block_head(0), Some(&0));
        assert_eq!(v.block_head(1), Some(&8));
        assert_eq!(
            v.block_head(2),
            Some(&16),
            "partial last block still has a head"
        );
        assert_eq!(v.block_head(3), None);
    }

    #[test]
    fn forecast_reader_submits_only_on_demand_from_manager() {
        let device = dev();
        let v = ExtVec::from_slice(device.clone(), &(0u64..40).collect::<Vec<_>>()).unwrap();
        let before = device.stats().snapshot();
        let mut r = v.reader_forecast(0, 2);
        assert_eq!(r.in_flight(), 0, "nothing submitted at construction");
        assert_eq!(r.next_fetch_head(), Some(&0));
        assert!(r.prefetch_one());
        assert_eq!(r.next_fetch_head(), Some(&8));
        assert!(r.prefetch_one());
        assert!(!r.prefetch_one(), "at capacity");
        assert_eq!(r.in_flight(), 2);
        let collected: Vec<u64> = std::iter::from_fn(|| r.try_next().unwrap()).collect();
        assert_eq!(collected, (0..40).collect::<Vec<_>>());
        let delta = device.stats().snapshot().since(&before);
        assert_eq!(
            delta.reads(),
            5,
            "forecast mode must not change read counts"
        );
        assert_eq!(delta.prefetched(), 2);
        assert_eq!(delta.forecast_issued(), 2);
        assert_eq!(
            delta.forecast_hits(),
            2,
            "both forecast blocks were consumed"
        );
        assert_eq!(delta.prefetch_wasted(), 0);
    }

    #[test]
    fn io_wait_sink_accumulates_on_blocking_transfers() {
        use std::sync::atomic::Ordering;
        let device = dev();
        let sink: IoWaitSink = Arc::new(AtomicU64::new(0));
        let mut w = ExtVecWriter::new(device.clone());
        w.set_io_wait_sink(Arc::clone(&sink));
        for i in 0..40u64 {
            w.push(i).unwrap();
        }
        let v = w.finish().unwrap();
        let wrote = sink.load(Ordering::Relaxed);
        let mut r = v.reader();
        r.set_io_wait_sink(Arc::clone(&sink));
        let _: Vec<u64> = std::iter::from_fn(|| r.try_next().unwrap()).collect();
        assert!(
            sink.load(Ordering::Relaxed) >= wrote,
            "reader adds to the same sink"
        );
    }

    #[test]
    fn write_behind_metadata_follows_completion_in_stream_order() {
        let device = dev();
        let budget = MemBudget::new(64);
        let mut w = ExtVecWriter::with_write_behind(device, 2, &budget);
        for i in 0..20u64 {
            w.push(i).unwrap();
        }
        let v = w.finish().unwrap();
        assert_eq!(v.to_vec().unwrap(), (0..20).collect::<Vec<_>>());
        assert_eq!(v.block_head(0), Some(&0));
        assert_eq!(v.block_head(1), Some(&8));
        assert_eq!(v.block_head(2), Some(&16));
    }

    #[test]
    fn overlap_depth_clamps_to_available_budget() {
        let device = dev();
        let budget = MemBudget::new(20); // room for 2 blocks of 8, not 3
        let r_vec = ExtVec::from_slice(device.clone(), &(0u64..40).collect::<Vec<_>>()).unwrap();
        let r = r_vec.reader_prefetch(5, &budget);
        assert_eq!(r.prefetch_depth(), 2);
        drop(r);
        let w = ExtVecWriter::<u64>::with_write_behind(device, 5, &budget);
        assert_eq!(w.write_behind_depth(), 2);
    }
}

/// Regression tests for the metadata-before-data crash window: the writer
/// must never describe a block (id + head) before the device has confirmed
/// it written, and a failed flush must be repairable in place.
#[cfg(test)]
mod fault_ordering_tests {
    use super::*;
    use pdm::{BlockDevice, FaultDisk, FaultPlan, RamDisk};

    #[test]
    fn failed_flush_repairs_in_place_and_keeps_metadata_aligned() {
        let ram = RamDisk::new(64); // 8 u64s per block
                                    // Every block's *first* write tears and errors; the repair must
                                    // rewrite the identical bytes (enforced by the verified plan), which
                                    // only holds if the writer retained the buffered records and reused
                                    // the allocated block.
        let device = FaultDisk::wrap(
            Arc::clone(&ram) as SharedDevice,
            FaultPlan::new(3).with_torn_writes_verified(1000),
        );
        let stats = device.stats();
        let mut w = ExtVecWriter::new(Arc::clone(&device) as SharedDevice);
        let mut flush_errors = 0;
        for i in 0..16u64 {
            if w.push(i).is_err() {
                flush_errors += 1; // retried by the next push/finish
            }
        }
        assert_eq!(flush_errors, 2, "each block's first write tears");
        let v = w.finish().unwrap(); // retries the second block's torn flush
        assert_eq!(v.to_vec().unwrap(), (0..16).collect::<Vec<_>>());
        assert_eq!(v.block_head(0), Some(&0), "heads stay aligned to blocks");
        assert_eq!(v.block_head(1), Some(&8));
        assert_eq!(
            ram.allocated_blocks(),
            2,
            "retries reuse the torn block instead of leaking it"
        );
        let snap = stats.snapshot();
        assert_eq!(snap.writes(), 4, "2 torn attempts + 2 repairs, all counted");
        assert_eq!(snap.faults_injected(), 2);
    }
}
