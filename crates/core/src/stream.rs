//! Buffered sequential streams over external arrays.
//!
//! A reader or writer holds exactly **one block** of records in memory, so a
//! `k`-way merge with one output stream holds `(k+1)·B` records — the
//! accounting that gives merge sort its `Θ(M/B)` fan-in.  Callers charge
//! these buffers against their [`MemBudget`](crate::MemBudget).

use pdm::{BlockId, Result, SharedDevice};

use crate::ext_vec::ExtVec;
use crate::record::Record;

/// Streaming writer: buffers one block, flushing when full.
///
/// Costs `⌈N/B⌉` write I/Os to emit `N` records.
pub struct ExtVecWriter<R: Record> {
    device: SharedDevice,
    blocks: Vec<BlockId>,
    buf: Vec<R>,
    byte_buf: Box<[u8]>,
    per_block: usize,
    len: u64,
}

impl<R: Record> ExtVecWriter<R> {
    /// Start writing a new external array on `device`.
    pub fn new(device: SharedDevice) -> Self {
        let per_block = ExtVec::<R>::per_block_on(&device);
        let byte_buf = vec![0u8; device.block_size()].into_boxed_slice();
        ExtVecWriter { device, blocks: Vec::new(), buf: Vec::with_capacity(per_block), byte_buf, per_block, len: 0 }
    }

    /// Records written so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records per block (`B`).
    pub fn per_block(&self) -> usize {
        self.per_block
    }

    /// Append one record, flushing a full buffer to a fresh block.
    pub fn push(&mut self, r: R) -> Result<()> {
        self.buf.push(r);
        self.len += 1;
        if self.buf.len() == self.per_block {
            self.flush_buf()?;
        }
        Ok(())
    }

    /// Finish, flushing any partial block, and return the completed array.
    pub fn finish(mut self) -> Result<ExtVec<R>> {
        if !self.buf.is_empty() {
            self.flush_buf()?;
        }
        Ok(ExtVec::from_parts(self.device, self.blocks, self.len))
    }

    fn flush_buf(&mut self) -> Result<()> {
        for (i, r) in self.buf.iter().enumerate() {
            r.write_to(&mut self.byte_buf[i * R::BYTES..(i + 1) * R::BYTES]);
        }
        // Zero the tail of a partial block so the encoding is deterministic.
        for b in self.byte_buf[self.buf.len() * R::BYTES..].iter_mut() {
            *b = 0;
        }
        let id = self.device.allocate()?;
        self.device.write_block(id, &self.byte_buf)?;
        self.blocks.push(id);
        self.buf.clear();
        Ok(())
    }
}

/// Streaming reader: buffers one block, refilling as it advances.
///
/// Costs `⌈N/B⌉` read I/Os to consume `N` records.
pub struct ExtVecReader<'a, R: Record> {
    vec: &'a ExtVec<R>,
    buf: Vec<R>,
    pos: usize,
    consumed: u64,
}

impl<'a, R: Record> ExtVecReader<'a, R> {
    pub(crate) fn new(vec: &'a ExtVec<R>, start: u64) -> Self {
        assert!(start <= vec.len(), "start beyond end");
        // The buffer starts empty; `fill` lazily loads the block that
        // `consumed` points into on first access.
        ExtVecReader { vec, buf: Vec::new(), pos: 0, consumed: start }
    }

    /// Records not yet returned.
    pub fn remaining(&self) -> u64 {
        self.vec.len() - self.consumed
    }

    /// Look at the next record without consuming it.  Costs an I/O only at
    /// block boundaries.
    pub fn peek(&mut self) -> Result<Option<&R>> {
        if self.remaining() == 0 {
            return Ok(None);
        }
        if self.pos >= self.buf.len() {
            self.fill()?;
        }
        Ok(Some(&self.buf[self.pos]))
    }

    /// Consume and return the next record.
    pub fn try_next(&mut self) -> Result<Option<R>> {
        if self.remaining() == 0 {
            return Ok(None);
        }
        if self.pos >= self.buf.len() {
            self.fill()?;
        }
        let r = self.buf[self.pos].clone();
        self.pos += 1;
        self.consumed += 1;
        Ok(Some(r))
    }

    fn fill(&mut self) -> Result<()> {
        // `consumed` points at the record we need; load its block.
        let per = self.vec.per_block() as u64;
        let bi = (self.consumed / per) as usize;
        self.vec.read_block_into(bi, &mut self.buf)?;
        self.pos = (self.consumed % per) as usize;
        Ok(())
    }
}

impl<R: Record> Iterator for ExtVecReader<'_, R> {
    type Item = R;

    /// Iterator convenience; panics on device error (which, for a correctly
    /// used simulator device, indicates a bug).  Use
    /// [`try_next`](Self::try_next) to handle errors.
    fn next(&mut self) -> Option<R> {
        self.try_next().expect("device read failed")
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = self.remaining() as usize;
        (r, Some(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EmConfig;

    fn dev() -> SharedDevice {
        EmConfig::new(64, 4).ram_disk() // 8 u64s per block
    }

    #[test]
    fn writer_reader_round_trip() {
        let device = dev();
        let mut w = ExtVecWriter::new(device.clone());
        for i in 0..1000u64 {
            w.push(i).unwrap();
        }
        let v = w.finish().unwrap();
        let collected: Vec<u64> = v.reader().collect();
        assert_eq!(collected, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_io_is_one_per_block() {
        let device = dev();
        let v = ExtVec::from_slice(device.clone(), &(0u64..80).collect::<Vec<_>>()).unwrap();
        let before = device.stats().snapshot();
        let _: Vec<u64> = v.reader().collect();
        let delta = device.stats().snapshot().since(&before);
        assert_eq!(delta.reads(), 10); // 80 records / 8 per block
        assert_eq!(delta.writes(), 0);
    }

    #[test]
    fn writer_io_is_one_per_block() {
        let device = dev();
        let before = device.stats().snapshot();
        let mut w = ExtVecWriter::new(device.clone());
        for i in 0..17u64 {
            w.push(i).unwrap();
        }
        let _v = w.finish().unwrap();
        let delta = device.stats().snapshot().since(&before);
        assert_eq!(delta.writes(), 3); // 2 full + 1 partial block
    }

    #[test]
    fn peek_does_not_consume() {
        let v = ExtVec::from_slice(dev(), &[10u64, 20, 30]).unwrap();
        let mut r = v.reader();
        assert_eq!(r.peek().unwrap(), Some(&10));
        assert_eq!(r.peek().unwrap(), Some(&10));
        assert_eq!(r.try_next().unwrap(), Some(10));
        assert_eq!(r.peek().unwrap(), Some(&20));
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    fn reader_at_offset() {
        let v = ExtVec::from_slice(dev(), &(0u64..30).collect::<Vec<_>>()).unwrap();
        let collected: Vec<u64> = v.reader_at(13).collect();
        assert_eq!(collected, (13..30).collect::<Vec<_>>());
        // Starting exactly at a block boundary.
        let collected: Vec<u64> = v.reader_at(16).collect();
        assert_eq!(collected, (16..30).collect::<Vec<_>>());
        // Starting at the end yields nothing.
        assert_eq!(v.reader_at(30).count(), 0);
    }

    #[test]
    fn empty_reader() {
        let v: ExtVec<u64> = ExtVec::new(dev());
        let mut r = v.reader();
        assert_eq!(r.peek().unwrap(), None);
        assert_eq!(r.try_next().unwrap(), None);
    }

    #[test]
    fn size_hint_exact() {
        let v = ExtVec::from_slice(dev(), &(0u64..5).collect::<Vec<_>>()).unwrap();
        let mut r = v.reader();
        assert_eq!(r.size_hint(), (5, Some(5)));
        r.next();
        assert_eq!(r.size_hint(), (4, Some(4)));
    }
}
