//! # `emtext` — external-memory text indexing
//!
//! The survey's flagship application outside databases is full-text
//! indexing: suffix arrays over texts far larger than memory.  This crate
//! builds them with nothing but the workspace's sorting machinery:
//!
//! * [`suffix_array`] — the prefix-doubling (Manber–Myers style) algorithm
//!   externalized: each of `⌈log₂ N⌉` rounds re-ranks all suffixes by their
//!   first `2^k` characters using two sorts and two scans, so the total is
//!
//!   ```text
//!   O(Sort(N) · log N)  I/Os
//!   ```
//!
//!   (the survey-era bound; later DC3-style constructions shave the log).
//!   Rounds stop early once all ranks are distinct, which for realistic
//!   text happens after `O(log (longest repeat))` rounds.
//!
//! * [`find_occurrences`] — substring search by binary search over the
//!   suffix array: `O(log₂ N · ⌈P/B⌉)` I/Os per query for a length-`P`
//!   pattern, reporting all match positions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use em_core::{ExtVec, ExtVecWriter};
use emsort::{merge_sort_by, SortConfig};
use pdm::Result;

/// Rank sentinel for "past the end of the text".
const NONE: u64 = u64::MAX;

/// Build the suffix array of `text`: the permutation `sa` of `0..N` such
/// that the suffixes `text[sa[0]..] < text[sa[1]..] < …` in byte order.
/// `O(Sort(N) · log N)` I/Os.
pub fn suffix_array(text: &ExtVec<u8>, cfg: &SortConfig) -> Result<ExtVec<u64>> {
    let device = text.device().clone();
    let n = text.len();
    if n == 0 {
        return Ok(ExtVec::new(device));
    }

    // Initial ranks: the byte at each position (+1 so NONE stays distinct).
    // ranks: (position, rank), sorted by position.
    let mut ranks: ExtVec<(u64, u64)> = {
        let mut w = ExtVecWriter::new(device.clone());
        let mut r = text.reader();
        let mut i = 0u64;
        while let Some(c) = r.try_next()? {
            w.push((i, c as u64 + 1))?;
            i += 1;
        }
        w.finish()?
    };

    let mut h = 1u64;
    loop {
        // Build (pos, r_pos, r_pos+h) triples by zipping `ranks` with a
        // copy of itself shifted h positions left; both streams are in
        // position order, so this is a single parallel scan.
        let triples: ExtVec<(u64, u64, u64)> = {
            let mut w = ExtVecWriter::new(device.clone());
            let mut cur = ranks.reader();
            let mut ahead = ranks.reader_at(h.min(n));
            while let Some((pos, r1)) = cur.try_next()? {
                let r2 = match ahead.try_next()? {
                    Some((_, r)) => r,
                    None => NONE, // suffix shorter than h+…: sorts first via key order below
                };
                w.push((pos, r1, r2))?;
            }
            w.finish()?
        };

        // Sort by the composite key (r1, r2); NONE (absent) must order
        // *before* any real rank because a shorter string is a prefix and
        // therefore smaller — map NONE to 0 (real ranks start at 1).
        let key = |t: &(u64, u64, u64)| (t.1, if t.2 == NONE { 0 } else { t.2 });
        let by_key = merge_sort_by(&triples, cfg, move |a, b| key(a) < key(b))?;
        triples.free()?;

        // Assign new ranks by scanning groups of equal keys.
        let distinct;
        let reranked: ExtVec<(u64, u64)> = {
            let mut w = ExtVecWriter::new(device.clone());
            let mut r = by_key.reader();
            let mut last_key: Option<(u64, u64)> = None;
            let mut rank = 0u64;
            while let Some(t) = r.try_next()? {
                let k = key(&t);
                if last_key != Some(k) {
                    rank += 1;
                    last_key = Some(k);
                }
                w.push((t.0, rank))?;
            }
            distinct = rank;
            w.finish()?
        };
        by_key.free()?;
        ranks.free()?;
        // Back to position order for the next round.
        ranks = merge_sort_by(&reranked, cfg, |a, b| a.0 < b.0)?;
        reranked.free()?;

        if distinct == n || h >= n {
            break;
        }
        h *= 2;
    }

    // SA = positions sorted by final rank.
    let by_rank = merge_sort_by(&ranks, cfg, |a, b| a.1 < b.1)?;
    ranks.free()?;
    let mut w: ExtVecWriter<u64> = ExtVecWriter::new(device);
    let mut r = by_rank.reader();
    while let Some((pos, _)) = r.try_next()? {
        w.push(pos)?;
    }
    drop(r);
    by_rank.free()?;
    w.finish()
}

/// Compare `pattern` against the suffix starting at `pos` (prefix order):
/// `Less`/`Greater` as for string comparison, `Equal` when the pattern is a
/// prefix of the suffix.  Costs `O(⌈P/B⌉)` I/Os.
fn cmp_pattern(text: &ExtVec<u8>, pos: u64, pattern: &[u8]) -> Result<std::cmp::Ordering> {
    use std::cmp::Ordering;
    let n = text.len();
    let take = pattern.len().min((n - pos) as usize);
    let mut chunk = Vec::new();
    text.read_range(pos, take, &mut chunk)?;
    for (a, b) in pattern.iter().zip(&chunk) {
        match a.cmp(b) {
            Ordering::Equal => continue,
            other => return Ok(other),
        }
    }
    // Pattern exhausted → prefix match; suffix exhausted first → pattern is
    // longer, i.e. greater.
    Ok(if take == pattern.len() {
        Ordering::Equal
    } else {
        Ordering::Greater
    })
}

/// All positions where `pattern` occurs in `text`, in increasing order,
/// found by binary search over the suffix array:
/// `O(log₂ N · ⌈P/B⌉ + Z/B)` I/Os.
pub fn find_occurrences(text: &ExtVec<u8>, sa: &ExtVec<u64>, pattern: &[u8]) -> Result<Vec<u64>> {
    use std::cmp::Ordering;
    assert!(!pattern.is_empty(), "empty pattern matches everywhere");
    let n = sa.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    // Lower bound: first suffix ≥ pattern.
    let mut lo = 0u64;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let pos = sa.get(mid)?;
        if cmp_pattern(text, pos, pattern)? == Ordering::Greater {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let start = lo;
    // Upper bound: first suffix with prefix > pattern.
    let mut hi2 = n;
    let mut lo2 = start;
    while lo2 < hi2 {
        let mid = (lo2 + hi2) / 2;
        let pos = sa.get(mid)?;
        if cmp_pattern(text, pos, pattern)? == Ordering::Less {
            hi2 = mid;
        } else {
            lo2 = mid + 1;
        }
    }
    let mut out = Vec::with_capacity((lo2 - start) as usize);
    sa.read_range(start, (lo2 - start) as usize, &mut out)?; // Z/B I/Os
    out.sort_unstable();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::EmConfig;
    use pdm::SharedDevice;
    use rand::prelude::*;

    fn device() -> SharedDevice {
        EmConfig::new(256, 16).ram_disk()
    }

    fn reference_sa(text: &[u8]) -> Vec<u64> {
        let mut sa: Vec<u64> = (0..text.len() as u64).collect();
        sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
        sa
    }

    fn check(text: &[u8]) {
        let d = device();
        let tv = ExtVec::from_slice(d, text).unwrap();
        let sa = suffix_array(&tv, &SortConfig::new(512)).unwrap();
        assert_eq!(
            sa.to_vec().unwrap(),
            reference_sa(text),
            "text {:?}",
            String::from_utf8_lossy(text)
        );
    }

    #[test]
    fn classic_banana() {
        check(b"banana");
        check(b"mississippi");
        check(b"abracadabra");
    }

    #[test]
    fn degenerate_texts() {
        check(b"");
        check(b"a");
        check(b"aa");
        check(b"aaaaaaaaaaaaaaaa"); // forces the full log N doubling rounds
        check(b"ab");
        check(b"ba");
        check(b"abababababab");
    }

    #[test]
    fn random_texts_small_alphabet() {
        let mut rng = StdRng::seed_from_u64(191);
        for len in [50usize, 500, 3000] {
            let text: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'd')).collect();
            check(&text);
        }
    }

    #[test]
    fn random_binary_data() {
        let mut rng = StdRng::seed_from_u64(192);
        let text: Vec<u8> = (0..2000).map(|_| rng.gen()).collect();
        check(&text);
    }

    #[test]
    fn search_finds_all_occurrences() {
        let d = device();
        let text = b"the quick brown fox jumps over the lazy dog; the end.";
        let tv = ExtVec::from_slice(d, text).unwrap();
        let sa = suffix_array(&tv, &SortConfig::new(512)).unwrap();
        assert_eq!(find_occurrences(&tv, &sa, b"the").unwrap(), vec![0, 31, 45]);
        assert_eq!(find_occurrences(&tv, &sa, b"fox").unwrap(), vec![16]);
        assert_eq!(
            find_occurrences(&tv, &sa, b"cat").unwrap(),
            Vec::<u64>::new()
        );
        assert_eq!(find_occurrences(&tv, &sa, b".").unwrap(), vec![52]);
    }

    #[test]
    fn search_matches_naive_scan_on_random_text() {
        let d = device();
        let mut rng = StdRng::seed_from_u64(193);
        let text: Vec<u8> = (0..4000).map(|_| rng.gen_range(b'a'..=b'c')).collect();
        let tv = ExtVec::from_slice(d, &text).unwrap();
        let sa = suffix_array(&tv, &SortConfig::new(512)).unwrap();
        for plen in [1usize, 2, 4, 7] {
            let start = rng.gen_range(0..text.len() - plen);
            let pattern = &text[start..start + plen];
            let got = find_occurrences(&tv, &sa, pattern).unwrap();
            let expect: Vec<u64> = (0..=text.len() - plen)
                .filter(|&i| &text[i..i + plen] == pattern)
                .map(|i| i as u64)
                .collect();
            assert_eq!(
                got,
                expect,
                "pattern {:?}",
                String::from_utf8_lossy(pattern)
            );
        }
    }

    #[test]
    fn overlapping_occurrences() {
        let d = device();
        let text = b"aaaa";
        let tv = ExtVec::from_slice(d, text).unwrap();
        let sa = suffix_array(&tv, &SortConfig::new(512)).unwrap();
        assert_eq!(find_occurrences(&tv, &sa, b"aa").unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn io_scales_with_sort_log() {
        let d = EmConfig::new(4096, 16).ram_disk();
        let mut rng = StdRng::seed_from_u64(194);
        let n = 100_000usize;
        let text: Vec<u8> = (0..n).map(|_| rng.gen_range(b'a'..=b'z')).collect();
        let tv = ExtVec::from_slice(d.clone(), &text).unwrap();
        let before = d.stats().snapshot();
        let sa = suffix_array(&tv, &SortConfig::new(16_384)).unwrap();
        let ios = d.stats().snapshot().since(&before).total();
        assert_eq!(sa.len() as usize, n);
        // With a 26-letter alphabet ranks are distinct after ~4 rounds;
        // each round is a few sorts of N pairs/triples.
        assert!(ios < 30_000, "suffix array construction used {ios} I/Os");
    }

    #[test]
    fn temporaries_freed() {
        let d = device();
        let tv =
            ExtVec::from_slice(d.clone(), b"the rain in spain stays mainly in the plain").unwrap();
        let before = d.allocated_blocks();
        let sa = suffix_array(&tv, &SortConfig::new(512)).unwrap();
        assert_eq!(d.allocated_blocks(), before + sa.num_blocks() as u64);
    }
}
